"""repro: communication-avoiding parallel TRSM (Wicky, Solomonik, Hoefler,
IPDPS 2017), reproduced in Python on a simulated alpha-beta-gamma machine.

Quickstart
----------
One solve, one call (wraps a single-request Cluster):

>>> import numpy as np
>>> from repro import trsm, random_lower_triangular, random_dense
>>> L = random_lower_triangular(256, seed=0)
>>> B = random_dense(256, 64, seed=1)
>>> result = trsm(L, B, p=64)           # It-Inv-TRSM on 64 simulated procs
>>> bool(result.residual < 1e-12)
True

Many solves, one machine — the Cluster front-end packs a queue of typed
requests onto disjoint subgrids (the paper's concurrent-subgrid pattern,
generalized):

>>> from repro import Cluster, TrsmRequest
>>> cluster = Cluster(p=64)
>>> rids = [cluster.submit(TrsmRequest(
...     L=random_lower_triangular(128, seed=s),
...     B=random_dense(128, 16, seed=50 + s))) for s in range(4)]
>>> outcome = cluster.run()
>>> bool(outcome.modeled_makespan < outcome.serial_seconds)
True

Package layout
--------------
``repro.api``       Cluster/Session front-end: typed requests, one machine
``repro.sched``     subgrid allocator (quadrant pool) + request scheduler
``repro.machine``   simulated machine: grids, collectives, cost accounting
``repro.dist``      distributed matrices, layouts, exact routing plans
``repro.mm``        Section III matrix multiplication
``repro.inversion`` Section V recursive triangular inversion
``repro.trsm``      Sections IV & VI TRSM algorithms + cost models
``repro.tuning``    Section VIII a-priori parameter selection
``repro.analysis``  Section IX tables, Figure 1 regime map, serve reports
"""

from repro.machine import Cost, CostParams, HARDWARE_PRESETS, Machine, ProcessorGrid
from repro.machine.validate import (
    GridError,
    ParameterError,
    ReproError,
    ShapeError,
)
from repro.dist import (
    BlockCyclicLayout,
    BlockedLayout,
    CyclicLayout,
    DistMatrix,
    End,
    Layout,
    RoutingPlan,
    TransitionPlan,
    change_layout,
    expected_local_words,
    extract_submatrix,
    embed_submatrix,
    fuse_transitions,
    gather_frame,
    redistribute,
    route_embed,
    route_submatrix,
    transpose_matrix,
)
from repro.mm import mm1d, mm3d
from repro.inversion import invert_lower_triangular, rec_tri_inv
from repro.trsm import (
    TrsmResult,
    heath_romine_trsv,
    it_inv_trsm,
    it_inv_trsm_global,
    rec_trsm,
    rec_trsm_global,
    trsm,
    trsm_lower_sequential,
)
from repro.trsm.variants import solve_lu, solve_triangular
from repro.trsm.prepared import PreparedTrsm
from repro.api import (
    Cluster,
    ClusterOutcome,
    InvRequest,
    MMRequest,
    PreparedSolveRequest,
    RequestRecord,
    TrsmRequest,
)
from repro.sched import (
    BackfillPolicy,
    LPTPolicy,
    OptimalPolicy,
    PackingPolicy,
    Schedule,
    Scheduler,
    SubgridAllocator,
    make_policy,
)
from repro.factor import cholesky_cost, cholesky_factor
from repro.tuning import (
    TrsmRegime,
    TuningChoice,
    classify_trsm,
    optimize_parameters,
    tuned_parameters,
)
from repro.util import (
    random_dense,
    random_lower_triangular,
    random_spd,
    relative_residual,
)

__version__ = "1.1.0"

__all__ = [
    "Cluster",
    "ClusterOutcome",
    "RequestRecord",
    "TrsmRequest",
    "MMRequest",
    "InvRequest",
    "PreparedSolveRequest",
    "SubgridAllocator",
    "Scheduler",
    "Schedule",
    "PackingPolicy",
    "LPTPolicy",
    "BackfillPolicy",
    "OptimalPolicy",
    "make_policy",
    "Cost",
    "CostParams",
    "HARDWARE_PRESETS",
    "Machine",
    "ProcessorGrid",
    "ReproError",
    "GridError",
    "ShapeError",
    "ParameterError",
    "DistMatrix",
    "Layout",
    "CyclicLayout",
    "BlockedLayout",
    "BlockCyclicLayout",
    "expected_local_words",
    "redistribute",
    "change_layout",
    "transpose_matrix",
    "extract_submatrix",
    "embed_submatrix",
    "route_submatrix",
    "route_embed",
    "End",
    "RoutingPlan",
    "TransitionPlan",
    "fuse_transitions",
    "gather_frame",
    "mm3d",
    "mm1d",
    "invert_lower_triangular",
    "rec_tri_inv",
    "trsm",
    "TrsmResult",
    "solve_triangular",
    "solve_lu",
    "PreparedTrsm",
    "cholesky_factor",
    "cholesky_cost",
    "trsm_lower_sequential",
    "heath_romine_trsv",
    "rec_trsm",
    "rec_trsm_global",
    "it_inv_trsm",
    "it_inv_trsm_global",
    "TrsmRegime",
    "TuningChoice",
    "classify_trsm",
    "tuned_parameters",
    "optimize_parameters",
    "random_dense",
    "random_lower_triangular",
    "random_spd",
    "relative_residual",
    "__version__",
]
