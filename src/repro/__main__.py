"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``solve``     run a tuned simulated solve on random operands and report costs
``serve``     replay a Poisson request stream through the Cluster scheduler
``tune``      print the a-priori parameters (closed form + model search)
``map``       print the Figure 1 regime map
``table``     print the Section IX conclusion table for a p-sweep
``presets``   list the machine cost presets
``report``    write model-side artifacts (CSV/JSON) to a directory
``selfcheck`` run the acceptance battery
``lint``      run replint, the repo-aware static-analysis pass

Every command operates on synthetic operands — the CLI exists to explore
the cost model and the simulator without writing a script.
"""

from __future__ import annotations

import argparse
import sys


def _add_nkp(p: argparse.ArgumentParser, n=256, k=64, pp=64) -> None:
    p.add_argument("-n", type=int, default=n, help="matrix dimension")
    p.add_argument("-k", type=int, default=k, help="right-hand sides")
    p.add_argument("-p", type=int, default=pp, help="processors (power of two)")


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro import HARDWARE_PRESETS, random_dense, random_lower_triangular, trsm

    params = HARDWARE_PRESETS[args.machine]
    L = random_lower_triangular(args.n, seed=args.seed)
    B = random_dense(args.n, args.k, seed=args.seed + 1)
    res = trsm(
        L,
        B,
        p=args.p,
        algorithm=args.algorithm,
        params=params,
        tune=args.tune,
        verify=not args.no_verify,
    )
    print(f"algorithm : {res.algorithm}")
    if res.choice is not None:
        c = res.choice
        print(
            f"parameters: regime={c.regime.value} p1={c.p1} p2={c.p2} "
            f"n0={c.n0} (r1={c.r1:.2f}, r2={c.r2:.2f})"
        )
    residual = "skipped" if res.residual is None else f"{res.residual:.3e}"
    print(f"residual  : {residual}")
    m = res.measured
    print(f"measured  : S={m.S:.0f}  W={m.W:.0f}  F={m.F:.0f}")
    print(f"time      : {res.time * 1e3:.4f} ms  (machine '{args.machine}')")
    for name, cost in sorted(res.phase_costs().items()):
        print(f"  phase {name:10s}: S={cost.S:8.0f} W={cost.W:12.0f} F={cost.F:12.0f}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro import HARDWARE_PRESETS

    params = HARDWARE_PRESETS[args.machine]
    if args.daemon:
        return _serve_daemon(args, params)
    from repro.analysis.serve import (
        cache_stats_report,
        policy_gap_report,
        serve_report,
    )
    from repro.api.online.arrivals import synthetic_stream

    requests_spec = synthetic_stream(
        count=args.requests,
        rate=args.rate,
        process=args.arrivals,
        n_range=(args.n_min, args.n_max),
        k_range=(args.k_min, args.k_max),
        seed=args.seed,
    )
    last_outcome = []

    def run() -> int:
        from repro.api.serve import replay

        if args.gap:
            print(
                policy_gap_report(
                    requests_spec,
                    p=args.p,
                    params=params,
                    verify=not args.no_verify,
                )
            )
            return 0
        from repro.backend import make_backend

        backend = make_backend(args.backend)
        outcome = replay(
            requests_spec,
            p=args.p,
            params=params,
            resident=not args.no_resident,
            verify=not args.no_verify,
            policy=args.policy,
            backend=backend,
        )
        last_outcome.append(outcome)
        print(serve_report(outcome))
        if args.validate:
            from repro.analysis import validation_report

            print()
            print(validation_report(backend, outcome).render())
        return 0

    if not args.profile:
        return run()
    import cProfile
    import io
    import pstats

    prof = cProfile.Profile()
    rc = prof.runcall(run)
    buf = io.StringIO()
    pstats.Stats(prof, stream=buf).strip_dirs().sort_stats("cumulative").print_stats(25)
    print("\nprofile (top 25 by cumulative time):")
    print(buf.getvalue())
    print("cache stats:")
    print(cache_stats_report(last_outcome[-1] if last_outcome else None))
    return rc


def _serve_daemon(args: argparse.Namespace, params) -> int:
    """The ``serve --daemon`` entry: stdin/socket protocol or load test."""
    from repro.api.online.admission import AdmissionConfig
    from repro.api.online.daemon import DaemonConfig, ServeDaemon

    admission = AdmissionConfig(
        rate=args.admit_rate,
        burst=args.admit_burst,
        max_queue_depth=args.max_queue,
    )
    daemon = ServeDaemon(
        DaemonConfig(
            p=args.p,
            params=params,
            policy=args.policy,
            verify=not args.no_verify,
            time_scale=args.time_scale,
            batch=args.batch,
            admission=admission,
        )
    )
    if args.load:
        import json

        summary = daemon.run_load_test(
            args.load,
            rate=args.rate,
            process=args.arrivals,
            n_range=(args.n_min, args.n_max),
            k_range=(args.k_min, args.k_max),
            seed=args.seed,
        )
        print(json.dumps(summary, separators=(",", ":")))
        return 0
    if args.socket:
        daemon.serve_unix(args.socket)
        return 0
    daemon.run_stdin()
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro import HARDWARE_PRESETS, optimize_parameters, tuned_parameters
    from repro.trsm.cost_model import iterative_cost, recursive_cost

    params = HARDWARE_PRESETS[args.machine]
    closed = tuned_parameters(args.n, args.k, args.p)
    best = optimize_parameters(args.n, args.k, args.p, params=params)
    print(f"regime: {closed.regime.value}")
    for name, c in (("closed form", closed), ("model search", best)):
        t = iterative_cost(args.n, args.k, c.n0, c.p1, c.p2).time(params)
        print(
            f"{name:13s}: p1={c.p1:<5d} p2={c.p2:<7d} n0={c.n0:<7d} "
            f"modeled {t * 1e3:.4f} ms"
        )
    t_rec = recursive_cost(args.n, args.k, args.p).time(params)
    print(f"{'recursive':13s}: modeled {t_rec * 1e3:.4f} ms (baseline)")
    return 0


def _cmd_map(args: argparse.Namespace) -> int:
    from repro.analysis import regime_map, render_regime_map

    print(
        render_regime_map(
            regime_map(
                (args.ratio_min, args.ratio_max), (args.p_min, args.p_max)
            )
        )
    )
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.analysis import format_table
    from repro.trsm.cost_model import conclusion_row
    from repro.tuning.regimes import classify_trsm

    rows = []
    p = args.p_min
    while p <= args.p_max:
        row = conclusion_row(args.n, args.k, p)
        std, new = row["standard"], row["new"]
        rows.append(
            [
                classify_trsm(args.n, args.k, p).value,
                p,
                std.S,
                new.S,
                std.S / new.S if new.S else float("inf"),
                std.W / new.W if new.W else float("inf"),
            ]
        )
        p *= 4
    print(
        format_table(
            ["regime", "p", "S std", "S new", "S ratio", "W ratio"],
            rows,
            title=f"Conclusion-table sweep (n={args.n}, k={args.k})",
        )
    )
    return 0


def _cmd_presets(_args: argparse.Namespace) -> int:
    from repro import HARDWARE_PRESETS

    for name, p in HARDWARE_PRESETS.items():
        print(
            f"{name:16s}: alpha={p.alpha:.2e}  beta={p.beta:.2e}  "
            f"gamma={p.gamma:.2e}  (alpha/beta = {p.latency_bandwidth_ratio():.3g})"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Communication-avoiding TRSM: simulated solves and cost models",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_solve = sub.add_parser("solve", help="run one tuned simulated solve")
    _add_nkp(p_solve)
    p_solve.add_argument(
        "--algorithm", choices=["auto", "iterative", "recursive"], default="auto"
    )
    p_solve.add_argument(
        "--tune", choices=["closed_form", "search"], default="closed_form"
    )
    p_solve.add_argument("--machine", default="default")
    p_solve.add_argument("--seed", type=int, default=0)
    p_solve.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the residual check (prints 'skipped')",
    )
    p_solve.set_defaults(func=_cmd_solve)

    p_serve = sub.add_parser(
        "serve", help="replay a Poisson TRSM request stream through the Cluster"
    )
    p_serve.add_argument("-p", type=int, default=64, help="processors (power of two)")
    p_serve.add_argument("--requests", type=int, default=8, help="stream length")
    p_serve.add_argument(
        "--rate",
        type=float,
        default=0.0,
        help="Poisson arrival rate in requests/s (0 = all arrive at t=0)",
    )
    p_serve.add_argument("--n-min", type=int, default=64)
    p_serve.add_argument("--n-max", type=int, default=256)
    p_serve.add_argument("--k-min", type=int, default=8)
    p_serve.add_argument("--k-max", type=int, default=64)
    p_serve.add_argument("--machine", default="default")
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument(
        "--policy",
        choices=["lpt", "backfill", "optimal", "horizon"],
        default="lpt",
        help="packing policy (optimal is exhaustive: queues of <= 8 only; "
        "horizon runs the same search on a sliding window at any length)",
    )
    p_serve.add_argument(
        "--backend",
        choices=["sim", "mpi"],
        default="sim",
        help="execution backend: 'sim' simulated clocks (default); 'mpi' "
        "executes the routing plans with real Alltoallv transport and "
        "wall-clock timing (requires mpi4py; values are identical)",
    )
    p_serve.add_argument(
        "--validate",
        action="store_true",
        help="print the modeled-vs-measured validation report after the run",
    )
    p_serve.add_argument(
        "--gap",
        action="store_true",
        help="replay the stream under every policy and print the gap report",
    )
    p_serve.add_argument(
        "--no-resident",
        action="store_true",
        help="pass operands as globals (skip data-plane hosting + migration)",
    )
    p_serve.add_argument("--no-verify", action="store_true")
    p_serve.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile and print the top functions by cumulative time",
    )
    p_serve.add_argument(
        "--arrivals",
        choices=["poisson", "lognormal", "diurnal"],
        default="poisson",
        help="arrival process for the synthetic stream (and --daemon --load)",
    )
    p_serve.add_argument(
        "--daemon",
        action="store_true",
        help="run the online serving daemon (JSON line protocol on stdin, "
        "or --socket / --load)",
    )
    p_serve.add_argument(
        "--socket",
        default=None,
        metavar="PATH",
        help="daemon only: serve the protocol on a Unix socket instead of stdin",
    )
    p_serve.add_argument(
        "--load",
        type=int,
        default=0,
        metavar="COUNT",
        help="daemon only: run a seeded load test of COUNT requests and exit",
    )
    p_serve.add_argument(
        "--time-scale",
        type=float,
        default=1e-6,
        help="daemon only: simulated seconds per wall second (default 1e-6)",
    )
    p_serve.add_argument(
        "--batch",
        type=int,
        default=8,
        help="daemon only: auto-flush after this many admitted requests",
    )
    p_serve.add_argument(
        "--admit-rate",
        type=float,
        default=None,
        help="daemon only: per-tenant token-bucket refill in requests per "
        "simulated second (default: no rate limit)",
    )
    p_serve.add_argument(
        "--admit-burst",
        type=float,
        default=8.0,
        help="daemon only: per-tenant token-bucket capacity",
    )
    p_serve.add_argument(
        "--max-queue",
        type=int,
        default=1024,
        help="daemon only: admission queue depth cap (rejects beyond it)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_tune = sub.add_parser("tune", help="a-priori parameter advice")
    _add_nkp(p_tune)
    p_tune.add_argument("--machine", default="default")
    p_tune.set_defaults(func=_cmd_tune)

    p_map = sub.add_parser("map", help="Figure 1 regime map")
    p_map.add_argument("--ratio-min", type=int, default=-8)
    p_map.add_argument("--ratio-max", type=int, default=8)
    p_map.add_argument("--p-min", type=int, default=4)
    p_map.add_argument("--p-max", type=int, default=65536)
    p_map.set_defaults(func=_cmd_map)

    p_table = sub.add_parser("table", help="Section IX conclusion-table sweep")
    p_table.add_argument("-n", type=int, default=256)
    p_table.add_argument("-k", type=int, default=64)
    p_table.add_argument("--p-min", type=int, default=64)
    p_table.add_argument("--p-max", type=int, default=2**20)
    p_table.set_defaults(func=_cmd_table)

    p_presets = sub.add_parser("presets", help="list machine cost presets")
    p_presets.set_defaults(func=_cmd_presets)

    p_report = sub.add_parser(
        "report", help="write model-side artifacts (CSV/JSON) to a directory"
    )
    p_report.add_argument("directory")
    p_report.add_argument("-n", type=int, default=256)
    p_report.add_argument("-k", type=int, default=64)
    p_report.set_defaults(func=_cmd_report)

    p_check = sub.add_parser("selfcheck", help="run the acceptance battery")
    p_check.add_argument("--quick", action="store_true")
    p_check.set_defaults(func=_cmd_selfcheck)

    p_lint = sub.add_parser(
        "lint", help="prove the cost model's invariants with replint"
    )
    p_lint.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests", "benchmarks"],
        help="files or directories to lint (default: src tests benchmarks)",
    )
    p_lint.add_argument(
        "--config",
        default=None,
        help="pyproject.toml holding [tool.replint] (default: nearest ancestor)",
    )
    p_lint.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    p_lint.set_defaults(func=_cmd_lint)

    return parser


def _cmd_selfcheck(args: argparse.Namespace) -> int:
    from repro.analysis.selfcheck import run_selfcheck

    report = run_selfcheck(quick=args.quick)
    print(report.render())
    return 0 if report.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.lint import run_lint

    return run_lint(
        args.paths,
        config_path=Path(args.config) if args.config else None,
        list_rules=args.list_rules,
    )


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.export import write_report

    for path in write_report(args.directory, n=args.n, k=args.k):
        print(f"wrote {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    from repro.machine.validate import ParameterError

    args = build_parser().parse_args(argv)
    try:
        return int(args.func(args))
    except ParameterError as exc:
        # a refused configuration (e.g. `--policy optimal` on a queue
        # longer than its exhaustive-search bound) is a usage error, not
        # a crash: one line, exit 2 (argparse's own usage-error code)
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
