"""Pluggable packing policies: the decision rule of the subgrid scheduler.

The :class:`~repro.sched.scheduler.Scheduler` owns the event loop — when
time advances, how placements commit, how the operand-cache plan and the
allocator destroy events are replayed — but *which* request is placed on
*which* subgrid size at each decision point is a strategy.  This module
defines that strategy interface (:class:`PackingPolicy`) and four
implementations the gap report in :mod:`repro.analysis.serve` compares:

* :class:`LPTPolicy` — the greedy longest-processing-time rule the
  scheduler always used, extracted verbatim (bit-identical schedules;
  ``tests/test_policies.py`` pins pre-refactor goldens);
* :class:`BackfillPolicy` — conservative (EASY-style) backfilling: when
  the longest arrived request is blocked, its earliest possible start is
  *reserved* and only placements that finish by the reservation may jump
  the queue, so backfilling can never delay the blocked head (the
  no-delay invariant, property-tested against the reservation log);
* :class:`OptimalPolicy` — branch-and-bound exhaustive search over all
  event-aligned schedules of a small queue (≤ 8 requests by default),
  pruned by the area bound; the ground-truth baseline the gap report
  measures the heuristics against;
* :class:`HorizonPolicy` — the rolling-horizon composition of the two:
  the same branch-and-bound run over a sliding window of queued
  requests, seeded from the *live* allocator state (running placements
  and all), committing only the head of each plan and re-planning when
  the window's membership changes, with conservative backfill scoring
  for arrived requests beyond the window.  Serves queues of any length
  at bounded per-decision cost.

Every placement option a policy considers is priced by the scheduler's
own pricing hook (closed-form execution cost plus the exact
:mod:`repro.dist.routing` staging cost of the request's resident operands
on the *concrete* candidate subgrid), so the prices a policy compares are
exactly the prices the commit pays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from repro.machine.cost import Cost, CostParams
from repro.machine.topology import ProcessorGrid
from repro.machine.validate import ParameterError, require
from repro.sched.allocator import SubgridAllocator
from repro.sched.pricing import PricingMemo

if TYPE_CHECKING:
    from repro.sched.scheduler import SchedulableRequest

#: relative slack for "same score" placement ties (smaller subgrid wins)
_TIE = 1e-6


def priority_of(req: object) -> int:
    """The request's priority class (0 for requests without the field).

    Foreign objects that merely satisfy the scheduler protocol (the test
    fakes, hand-rolled requests) predate the online-serving fields, so
    the policy layer reads them defensively.
    """
    return int(getattr(req, "priority", 0))


def deadline_of(req: object) -> float:
    """The request's SLA deadline in simulated seconds (``inf`` when none).

    ``inf`` makes deadline a total order: within a priority class,
    deadline-bearing requests sort earliest-deadline-first ahead of
    best-effort ones, and requests without the field tie exactly as
    before the online subsystem existed.
    """
    deadline = getattr(req, "deadline", None)
    return float("inf") if deadline is None else float(deadline)


@dataclass(frozen=True, slots=True)
class Candidate:
    """One priced placement option: a request on a concrete subgrid, now."""

    size: int
    grid: ProcessorGrid
    staging: Cost
    saved: Cost
    targets: tuple
    modeled: Cost
    duration: float
    finish: float


@dataclass(frozen=True, slots=True)
class Decision:
    """What :meth:`PackingPolicy.choose` returns: place this request here."""

    index: int
    request: object
    candidate: Candidate


class PolicyContext:
    """One decision point of the event loop, with pricing helpers.

    Rebuilt by the scheduler before every policy consultation, so a policy
    always sees the post-commit pool and queue.  ``pending`` holds *all*
    unplaced requests (the area bound charges future arrivals too);
    :meth:`arrived` filters to those the policy may actually place now.
    ``running`` lists committed, unfinished placements as
    ``(finish, index, size, grid)`` in finish order.

    ``arrived`` and ``memo`` are performance hooks the scheduler may
    supply: a pre-filtered arrived list (so :meth:`arrived` skips the
    queue scan) and a :class:`~repro.sched.pricing.PricingMemo` every
    pricing helper then routes through.  Without them the helpers fall
    back to the original direct computations, value for value.
    """

    def __init__(
        self,
        now: float,
        allocator: SubgridAllocator,
        params: CostParams,
        pending: Sequence[tuple[int, SchedulableRequest]],
        running: Sequence[tuple[float, int, int, ProcessorGrid]],
        pricer: Callable[
            [SchedulableRequest, ProcessorGrid], tuple[Cost, Cost, tuple]
        ],
        *,
        arrived: Sequence[tuple[int, SchedulableRequest]] | None = None,
        memo: PricingMemo | None = None,
    ) -> None:
        self.now = now
        self.allocator = allocator
        self.params = params
        self.pending = pending
        self.running = running
        self._pricer = pricer
        self._arrived = arrived
        self._memo = memo

    @property
    def capacity(self) -> int:
        return self.allocator.capacity

    def arrived(self) -> list[tuple[int, SchedulableRequest]]:
        """Unplaced requests whose arrival time has passed, queue order."""
        if self._arrived is not None:
            return list(self._arrived)
        return [it for it in self.pending if it[1].arrival <= self.now]

    # -- pricing ------------------------------------------------------------

    def candidate_sizes(self, req: SchedulableRequest) -> list[int]:
        """The request's candidate subgrid sizes on this pool (memoized)."""
        if self._memo is not None:
            return self._memo.sizes(req)
        return req.candidate_sizes(self.capacity)

    def exec_seconds(self, req: SchedulableRequest, size: int) -> float:
        if self._memo is not None:
            return self._memo.exec_seconds(req, size)
        return req.modeled_cost(size, self.params).time(self.params)

    def min_exec_seconds(self, req: SchedulableRequest) -> float:
        """Best-case execution seconds over the request's candidate sizes."""
        if self._memo is not None:
            return self._memo.min_exec_seconds(req)
        return min(
            (self.exec_seconds(req, s) for s in req.candidate_sizes(self.capacity)),
            default=0.0,
        )

    def min_area(self, req: SchedulableRequest) -> float:
        """Fewest rank-seconds any placement of ``req`` consumes."""
        if self._memo is not None:
            return self._memo.min_area(req)
        return min(
            (s * self.exec_seconds(req, s) for s in req.candidate_sizes(self.capacity)),
            default=0.0,
        )

    def rest_area(self, index: int) -> float:
        """Minimum rank-seconds the rest of the queue still owes."""
        if self._memo is not None:
            return self._memo.rest_area(index)
        return sum(self.min_area(r) for j, r in self.pending if j != index)

    def staging_seconds(self, req: SchedulableRequest, grid: ProcessorGrid) -> float:
        """Seconds to stage ``req``'s resident operands onto ``grid``.

        The raw charged-staging time of the scheduler's pricing hook —
        what the branch-and-bound search memoizes per (request, concrete
        grid) without building a full :class:`Candidate`.
        """
        staging, _saved, _targets = self._pricer(req, grid)
        return staging.time(self.params)

    def price(
        self,
        req: SchedulableRequest,
        size: int,
        pool: SubgridAllocator | None = None,
        now: float | None = None,
    ) -> Candidate | None:
        """Price placing ``req`` at ``size`` on the pool's preview block.

        ``None`` when no free block serves the size.  ``pool`` lets a
        policy price against a what-if copy (:meth:`scratch_pool`) and
        ``now`` against a hypothetical clock — both default to the live
        decision point.
        """
        pool = self.allocator if pool is None else pool
        now = self.now if now is None else now
        grid = pool.preview(size)
        if grid is None:
            return None
        staging, saved, targets = self._pricer(req, grid)
        if self._memo is not None:
            modeled = self._memo.modeled_cost(req, size)
        else:
            modeled = req.modeled_cost(size, self.params)
        duration = staging.time(self.params) + modeled.time(self.params)
        return Candidate(
            size=size,
            grid=grid,
            staging=staging,
            saved=saved,
            targets=targets,
            modeled=modeled,
            duration=duration,
            finish=now + duration,
        )

    def best_candidate(
        self,
        req: SchedulableRequest,
        rest_area: float,
        deadline: float | None = None,
    ) -> Candidate | None:
        """The minimum-score placement of ``req`` on the current pool.

        A placement is scored ``max(finish, area bound)`` where the area
        bound charges the candidate for the capacity it consumes against
        the remaining queue's minimum rank-seconds — the rule that makes
        every policy *pack* instead of grabbing the whole machine.
        Near-ties (1 ppm) take the smaller subgrid.  ``deadline`` drops
        candidates finishing after it (how backfilling guards a
        reservation).
        """
        best: tuple[float, Candidate] | None = None
        for size in self.candidate_sizes(req):
            cand = self.price(req, size)
            if cand is None:
                continue
            if deadline is not None and cand.finish > deadline:
                continue
            score = max(
                cand.finish,
                self.now + (rest_area + size * cand.duration) / self.capacity,
            )
            if (
                best is None
                or score < best[0] * (1.0 - _TIE)
                or (score <= best[0] * (1.0 + _TIE) and size < best[1].size)
            ):
                best = (score, cand)
        return None if best is None else best[1]

    # -- what-if simulation -------------------------------------------------

    def scratch_pool(self) -> SubgridAllocator:
        """A detached copy of the pool for hole-preview simulation.

        Releasing and re-leasing here never fires the real pool's destroy
        hook, so a policy can ask "when would this fit?" without the
        scheduler recording phantom cache evictions.
        """
        return self.allocator.clone()

    def earliest_fit(self, req: SchedulableRequest) -> float | None:
        """Earliest modeled time ``req`` could start with no new tenants.

        Simulates the running placements releasing at their modeled
        finishes (in finish order) on a scratch pool and returns the
        first time a candidate size of ``req`` fits — ``self.now`` when
        it already fits, ``None`` when it can never fit (no candidate
        size is allocatable even in a drained pool).
        """
        sizes = self.candidate_sizes(req)
        if not sizes:
            return None
        smallest = min(sizes)
        if self.allocator.can_allocate(smallest):
            return self.now
        pool = self.scratch_pool()
        for finish, _index, _size, grid in sorted(
            self.running, key=lambda r: (r[0], r[1])
        ):
            pool.release(grid)
            if pool.can_allocate(smallest):
                return finish
        return None

    # -- the priority-aware view ---------------------------------------------

    def class_order(self) -> list[tuple[int, SchedulableRequest]]:
        """Arrived requests in serving order: the priority-aware view.

        Higher priority classes first; within a class earliest SLA
        deadline first (best-effort requests, deadline ``inf``, behind
        any deadline-bearing one); remaining ties longest best-case
        execution first — the historical LPT rank.  The sort is stable
        and every tier is neutral under the defaults (one class, no
        deadlines), so offline streams order exactly as they always did:
        this *is* :func:`lpt_order` when no request carries the online
        fields, which is what keeps the golden schedules pinned.
        """
        arrived = self.arrived()
        arrived.sort(
            key=lambda it: (
                -priority_of(it[1]),
                deadline_of(it[1]),
                -self.min_exec_seconds(it[1]),
            )
        )
        return arrived


def lpt_order(ctx: PolicyContext) -> list[tuple[int, SchedulableRequest]]:
    """Arrived requests in serving order (see :meth:`PolicyContext.class_order`)."""
    return ctx.class_order()


class PackingPolicy:
    """Strategy interface: pick the next placement at a decision point.

    The scheduler calls :meth:`choose` repeatedly at each decision point
    (rebuilding the context after every commit) until it returns ``None``,
    then advances time to the next event.  :meth:`reset` runs once per
    ``schedule()`` pass before the event loop starts.
    """

    name = "policy"
    #: True for policies that pre-plan a timeline and therefore cannot
    #: follow cache-aware repricing (the scheduler refuses the combination)
    requires_uncached = False

    def reset(self, requests: Sequence[object]) -> None:
        """Hook called once per scheduling pass with the full queue."""

    def choose(self, ctx: PolicyContext) -> Decision | None:
        raise NotImplementedError


class LPTPolicy(PackingPolicy):
    """Greedy longest-processing-time list scheduling (the historical rule).

    Arrived requests are ranked longest best-case execution first; the
    first one with any feasible placement is committed at its best-scored
    size.  A blocked longer request does *not* hold shorter ones back —
    that greedy skip is exactly what :class:`BackfillPolicy` replaces
    with a reservation.
    """

    name = "lpt"

    def choose(self, ctx: PolicyContext) -> Decision | None:
        for index, req in lpt_order(ctx):
            cand = ctx.best_candidate(req, ctx.rest_area(index))
            if cand is not None:
                return Decision(index, req, cand)
        return None


class BackfillPolicy(PackingPolicy):
    """Conservative backfilling: fill holes without delaying the blocked head.

    Identical to :class:`LPTPolicy` until the LPT head cannot be placed.
    Then the head's earliest possible start is computed from the running
    placements' modeled finishes (:meth:`PolicyContext.earliest_fit`) and
    *reserved*; later requests in the LPT order may start in the idle
    blocks only if every candidate placement finishes by the reservation.

    The reservation is *sticky*: the reserved request keeps queue
    priority until it is placed, even if a longer request arrives in the
    meantime (a reservation is a promise — new arrivals go behind it,
    exactly as in EASY backfilling's FCFS guarantee).  The one exception
    is the online-serving priority ladder: a reservation held by a
    *queued* request is dropped when a strictly higher priority class
    arrives — the preempting request becomes the new head and the old
    head re-reserves behind it.  Only queued work is ever preempted;
    committed placements (running work) are never revoked, so preemption
    can change who waits but never rolls back the simulated machine.
    ``preemptions`` logs every ``(decision time, preempted index,
    preempting index)``.

    **No-delay invariant**: a backfilled placement returns its block by
    the reserved time, and buddy coalescing is canonical in the lease
    set, so the free blocks the reservation was computed from are free
    again at the reservation — the head can always start by it.  While
    the head stays blocked the reservation is recomputed every decision
    point and can only move *earlier* (every tenant admitted after the
    reservation releases its block by it).  ``reservations`` logs every
    ``(decision time, head index, reserved start)`` so the property test
    can check ``head start ≤ reserved start`` directly.
    """

    name = "backfill"

    def __init__(self) -> None:
        #: (decision time, blocked head index, reserved start) log
        self.reservations: list[tuple[float, int, float]] = []
        #: (decision time, preempted index, preempting index) log
        self.preemptions: list[tuple[float, int, int]] = []
        self._reserved: int | None = None

    def reset(self, requests: Sequence[object]) -> None:
        self.reservations = []
        self.preemptions = []
        self._reserved = None

    def choose(self, ctx: PolicyContext) -> Decision | None:
        order = lpt_order(ctx)
        if not order:
            return None
        if self._reserved is not None:
            at = [i for i, it in enumerate(order) if it[0] == self._reserved]
            if not at:
                self._reserved = None  # placed on a previous pass
            elif priority_of(order[0][1]) > priority_of(order[at[0]][1]):
                # A strictly higher priority class arrived: the *queued*
                # reservation is preempted (running placements are never
                # revoked) and the new head reserves in its place below.
                self.preemptions.append((ctx.now, self._reserved, order[0][0]))
                self._reserved = None
            elif at[0] != 0:
                order.insert(0, order.pop(at[0]))
        index, req = order[0]
        cand = ctx.best_candidate(req, ctx.rest_area(index))
        if cand is not None:
            if index == self._reserved:
                self._reserved = None
            return Decision(index, req, cand)
        reserve = ctx.earliest_fit(req)
        if reserve is None:
            # The head can never fit any block of this pool: fall back to
            # plain greedy so the scheduler's guard reports it, exactly
            # as under LPT.
            for jndex, jreq in order[1:]:
                jcand = ctx.best_candidate(jreq, ctx.rest_area(jndex))
                if jcand is not None:
                    return Decision(jndex, jreq, jcand)
            return None
        self._reserved = index
        self.reservations.append((ctx.now, index, reserve))
        for jndex, jreq in order[1:]:
            jcand = ctx.best_candidate(jreq, ctx.rest_area(jndex), deadline=reserve)
            if jcand is not None:
                return Decision(jndex, jreq, jcand)
        return None


#: one planned placement: (queue index, request, size, start, grid)
PlanEntry = tuple[int, "SchedulableRequest", int, float, ProcessorGrid]


def _search_window(
    ctx: PolicyContext,
    items: Sequence[tuple[int, "SchedulableRequest"]],
    running: Sequence[tuple[float, int, int, ProcessorGrid]],
    node_budget: int | None = None,
) -> tuple[list[PlanEntry], float, int]:
    """Branch-and-bound minimum-makespan plan for ``items``, live state in.

    The one exhaustive search both :class:`OptimalPolicy` (whole queue,
    idle pool, unbounded) and :class:`HorizonPolicy` (sliding window,
    running work, budgeted) plan with.  ``running`` seeds the search with
    the committed-but-unfinished placements — their blocks are leased in
    the scratch pool (:meth:`SubgridAllocator.clone` reconstructs the
    live lease set via ``lease_exact``) and released as the search's wait
    branches reach their modeled finishes — so re-planning mid-stream
    sees exactly the machine the event loop sees.

    ``node_budget`` bounds the search: once that many nodes have been
    explored *and* a complete incumbent exists, remaining branches are
    abandoned and the incumbent plan is returned.  The first descent
    follows the greedy scoring to a complete schedule, so any budget
    yields a feasible plan; an unbounded search (``None``) returns the
    exact optimum.

    Returns ``(plan, makespan, nodes_explored)`` where ``plan`` is the
    chronological placement list and ``makespan`` the modeled completion
    time of the planned window plus the seeded running work (the event
    timeline scale the plan-following tolerance derives from).
    """
    params, capacity = ctx.params, ctx.capacity
    items = list(items)
    req_by = dict(items)
    arrival = {i: req.arrival for i, req in items}
    sizes = {i: ctx.candidate_sizes(req) for i, req in items}
    pool = ctx.scratch_pool()
    bounds_pool = ctx.allocator.drained_clone()
    best: dict = {"makespan": float("inf"), "plan": None}
    seen: dict = {}
    nodes = 0

    # Durations are pure in (request, concrete grid): memoize across
    # the whole search (staging plans are the expensive part).
    exec_memo: dict[tuple[int, int], float] = {
        (i, s): ctx.exec_seconds(req, s) for i, req in items for s in sizes[i]
    }
    stage_memo: dict[tuple[int, ProcessorGrid], float] = {}

    def duration_of(i: int, size: int, grid: ProcessorGrid) -> float:
        key = (i, grid)
        staged = stage_memo.get(key)
        if staged is None:
            staged = ctx.staging_seconds(req_by[i], grid)
            stage_memo[key] = staged
        return staged + exec_memo[(i, size)]

    # Staging-inclusive lower bounds, priced on a drained pool's
    # canonical blocks (our cyclic layouts route the same word counts
    # to every congruent block, so the canonical price stands in for
    # any block of that size — including blocks the live leases hide):
    # the shortest possible duration of each request and the fewest
    # rank-seconds it can consume.
    dur0: dict[tuple[int, int], float] = {}
    for i, _req in items:
        for s in sizes[i]:
            grid0 = bounds_pool.preview(s)
            assert grid0 is not None  # a drained pool serves every size
            dur0[(i, s)] = duration_of(i, s, grid0)
    min_dur = {
        i: min((dur0[(i, s)] for s in sizes[i]), default=0.0) for i, _req in items
    }
    areas = {
        i: min((s * dur0[(i, s)] for s in sizes[i]), default=0.0)
        for i, _req in items
    }

    def state_key(
        pending: frozenset[int],
        running: list[tuple[float, int, int, ProcessorGrid]],
        now: float,
        barrier: int,
    ) -> tuple:
        # exact floats: rounding could alias a state with its own
        # wait-descendant (e.g. a sub-grain arrival) and prune the
        # only feasible path; identical placement sets still collide
        # exactly because their times are the same float sums
        return (
            frozenset(pending),
            tuple(sorted((f, tuple(g.ranks())) for f, _i, _s, g in running)),
            now,
            barrier,
        )

    def dfs(
        pending: frozenset[int],
        running: list[tuple[float, int, int, ProcessorGrid]],
        now: float,
        plan: list[PlanEntry],
        max_finish: float,
        barrier: int,
    ) -> None:
        nonlocal nodes
        if (
            node_budget is not None
            and nodes >= node_budget
            and best["plan"] is not None
        ):
            return  # budget spent: keep the incumbent (anytime search)
        nodes += 1
        if not pending:
            if max_finish < best["makespan"]:
                best["makespan"] = max_finish
                best["plan"] = list(plan)
            return
        # prune: area bound + release-plus-execution bounds
        lb = max_finish
        owed = sum((f - now) * g.size for f, _i, _s, g in running)
        owed += sum(areas[i] for i in pending)
        lb = max(lb, now + owed / capacity)
        for i in pending:
            lb = max(lb, max(now, arrival[i]) + min_dur[i])
        if lb >= best["makespan"] * (1.0 - 1e-12):
            return
        key = state_key(pending, running, now, barrier)
        prior = seen.get(key)
        if prior is not None and prior <= max_finish:
            return
        seen[key] = max_finish
        # Placement branches, best-scored first (greedy-first descent,
        # so the incumbent starts near the heuristics' makespan).
        # ``barrier`` canonicalizes same-timestamp placements to
        # increasing request index: committing {A, B} at one decision
        # time in either order books the same sizes for the same
        # durations (staging volumes are congruent across same-size
        # blocks), so only one order needs exploring.
        options: list[tuple[float, int, int, float]] = []
        for i in pending:
            if arrival[i] > now or i <= barrier:
                continue
            rest = sum(areas[j] for j in pending if j != i)
            priced: list[tuple[int, ProcessorGrid, float]] = []
            for size in sizes[i]:
                grid = pool.preview(size)
                if grid is None:
                    continue
                priced.append((size, grid, duration_of(i, size, grid)))
            priced.sort()
            for pos, (size, grid, duration) in enumerate(priced):
                # dominated size: a smaller nested block runs this
                # request at most as long while leaving the pool
                # strictly freer — the bigger placement can always be
                # exchanged for the smaller one without losing makespan
                ranks = set(grid.ranks())
                if any(
                    d2 <= duration and set(g2.ranks()) <= ranks
                    for _s2, g2, d2 in priced[:pos]
                ):
                    continue
                finish = now + duration
                score = max(finish, now + (rest + size * duration) / capacity)
                options.append((score, i, size, finish))
        options.sort(key=lambda o: (o[0], o[2], o[1]))
        for _score, i, size, finish in options:
            grid = pool.allocate(size)
            assert grid is not None
            entry = (i, req_by[i], size, now, grid)
            dfs(
                pending - {i},
                running + [(finish, i, size, grid)],
                now,
                plan + [entry],
                max(max_finish, finish),
                i,
            )
            pool.release(grid)
        # wait branch: advance to the next event
        next_finish = min((f for f, *_ in running), default=None)
        next_arrival = min(
            (arrival[i] for i in pending if arrival[i] > now), default=None
        )
        candidates = [t for t in (next_finish, next_arrival) if t is not None]
        if not candidates:
            require(
                barrier >= 0 or bool(options),
                ParameterError,
                "a pending request fits no allocatable subgrid size",
            )
            return
        nxt = min(candidates)
        released = [r for r in running if r[0] <= nxt]
        for _f, _i, _s, g in released:
            pool.release(g)
        dfs(
            pending,
            [r for r in running if r[0] > nxt],
            nxt,
            plan,
            max_finish,
            -1,
        )
        for _f, _i, _s, g in reversed(released):
            pool.lease_exact(g)

    dfs(
        frozenset(i for i, _ in items),
        list(running),
        ctx.now,
        [],
        max((f for f, *_ in running), default=0.0),
        -1,
    )
    require(
        best["plan"] is not None,
        ParameterError,
        "optimal search found no feasible schedule",
    )
    return best["plan"], best["makespan"], nodes


class OptimalPolicy(PackingPolicy):
    """Branch-and-bound exhaustive packing of a small queue (ground truth).

    Explores every *event-aligned* schedule — placements happen at t = 0,
    at an arrival, or at a modeled finish, which is exactly the set of
    decision points the event loop offers, and some optimal schedule is
    always of this form (shifting any placement earlier to the previous
    event never hurts) — including deliberately idling capacity that the
    greedy rules would grab.  Pruned by the area bound (remaining
    rank-seconds over capacity), by per-request release-plus-execution
    lower bounds, and by state dominance; the first descent follows the
    greedy scoring so the incumbent starts at (roughly) the LPT makespan
    and the search space only shrinks it.  The LPT schedule itself is in
    the search space, so the result is never worse than LPT.

    Exhaustive search is exponential: queues above ``max_requests``
    (default 8, the tractability bound the gap report advertises) are
    rejected — :class:`HorizonPolicy` serves longer queues by running
    this same search over a sliding window.  The policy pre-plans the
    whole timeline at the first decision point, so it must see the same
    prices at commit time — combining it with an operand cache is refused
    (``requires_uncached``); :class:`~repro.api.cluster.Cluster` drops
    its cache automatically when given this policy.
    """

    name = "optimal"
    requires_uncached = True

    def __init__(self, max_requests: int = 8) -> None:
        require(
            max_requests >= 1,
            ParameterError,
            f"max_requests must be positive, got {max_requests}",
        )
        self.max_requests = int(max_requests)
        self._plan: list[PlanEntry] | None = None
        self._plan_span = 0.0
        self._cursor = 0
        #: search-size statistic of the last planning pass (for reports)
        self.nodes_explored = 0

    def reset(self, requests: Sequence[object]) -> None:
        require(
            len(requests) <= self.max_requests,
            ParameterError,
            f"OptimalPolicy searches exhaustively: a queue of "
            f"{len(requests)} requests exceeds max_requests="
            f"{self.max_requests} (use horizon/lpt/backfill for long "
            "queues)",
        )
        self._plan = None
        self._plan_span = 0.0
        self._cursor = 0

    def choose(self, ctx: PolicyContext) -> Decision | None:
        if self._plan is None:
            self._plan, self._plan_span, self.nodes_explored = _search_window(
                ctx, list(ctx.pending), list(ctx.running)
            )
        if self._cursor >= len(self._plan):
            return None
        index, req, size, start, grid = self._plan[self._cursor]
        tol = _plan_tolerance(start, self._plan_span)
        if ctx.now < start - tol or ctx.now < req.arrival:
            # idle on purpose until the planned start — the arrival check
            # keeps the tolerance floor from matching a planned start
            # whose arrival sits closer to the clock than the floor
            return None
        require(
            ctx.now <= start + tol,
            ParameterError,
            "optimal plan diverged from the event loop (planned start "
            f"{start!r}, loop reached {ctx.now!r})",
        )
        cand = ctx.price(req, size)
        if cand is None or cand.grid != grid:
            # more releases land at this same timestamp; wait for them
            return None
        self._cursor += 1
        return Decision(index, req, cand)


def _plan_tolerance(start: float, span: float) -> float:
    """Slack for matching a planned start against the event loop's clock.

    The loop re-derives the plan's times from the same float arithmetic,
    so matches are exact up to reassociation — the tolerance is relative
    (1 ppb of the planned start).  A purely relative tolerance collapses
    to *exact* equality when the planned start is 0.0, which made any
    sub-ulp drift at t = 0 trip the divergence guard; the floor derived
    from the plan's own event timeline (1 ppb of its makespan — far below
    any event gap the timeline resolves) keeps re-plans at early
    timestamps, which :class:`HorizonPolicy` performs constantly, from
    spuriously diverging.
    """
    return 1e-9 * max(abs(start), span)


class HorizonPolicy(PackingPolicy):
    """Rolling-horizon packing: branch-and-bound over a sliding window.

    Closes the measured policy gaps from both sides: on queues that fit
    the window this *is* :class:`OptimalPolicy` (the plans are
    bit-identical — property-tested), and on longer queues it keeps the
    exhaustive search tractable by planning only a window of requests at
    a time:

    * at each decision point the window holds the first ``window``
      unplaced requests — arrived requests in priority/LPT serving order
      first, then future arrivals in arrival order (so the search
      anticipates near-term arrivals exactly as the full optimum does);
    * the window is planned with :func:`_search_window`, *seeded from the
      live allocator state*: committed-but-unfinished placements enter
      the search as running work whose blocks free up at their modeled
      finishes — no idle-pool restriction;
    * only the head of the plan is committed; the rest is followed while
      it stays valid and re-planned as soon as the window's membership
      changes (a placement slides the next queued request in, a new
      arrival jumps in ahead of a future member);
    * while the plan deliberately idles until its next start, arrived
      requests *beyond* the window may backfill — with
      :class:`BackfillPolicy`'s conservative scoring, where the next
      planned start acts as the reservation: only placements finishing by
      it are admitted, so backfilled work always returns its block before
      the plan needs the pool (buddy coalescing is canonical, so the free
      structure the plan modeled is intact) and the plan is never delayed.

    Each re-plan is budgeted (``node_budget`` search nodes): the
    branch-and-bound is *anytime* — the greedy-first descent completes an
    incumbent immediately and further nodes only improve it — so on
    adversarial windows the policy degrades toward greedy quality instead
    of stalling the stream.  Per-decision cost is thereby bounded by
    O(budget) regardless of queue length.  Like the optimum it composes,
    the policy pre-plans placements, so it requires the operand cache off
    (``requires_uncached``).  ``replans`` and ``nodes_explored`` expose
    the planning effort for reports.
    """

    name = "horizon"
    requires_uncached = True

    def __init__(self, window: int = 8, node_budget: int | None = 50_000) -> None:
        require(
            window >= 1, ParameterError, f"window must be positive, got {window}"
        )
        require(
            node_budget is None or node_budget >= 1,
            ParameterError,
            f"node_budget must be positive or None, got {node_budget}",
        )
        self.window = int(window)
        self.node_budget = None if node_budget is None else int(node_budget)
        self._plan: list[PlanEntry] = []
        self._plan_span = 0.0
        self._cursor = 0
        self._planned = False
        #: planning-effort statistics of the last scheduling pass
        self.nodes_explored = 0
        self.replans = 0

    def reset(self, requests: Sequence[object]) -> None:
        self._plan = []
        self._plan_span = 0.0
        self._cursor = 0
        self._planned = False
        self.nodes_explored = 0
        self.replans = 0

    def _window_of(self, ctx: PolicyContext) -> list[tuple[int, SchedulableRequest]]:
        """The first ``window`` unplaced requests in serving order.

        Arrived requests first (priority-aware LPT order, the same view
        every other policy serves from), then not-yet-arrived requests
        earliest arrival first — the rolling head of the stream.
        """
        head = ctx.class_order()
        if len(head) < self.window:
            chosen = {i for i, _ in head}
            future = sorted(
                (it for it in ctx.pending if it[0] not in chosen),
                key=lambda it: (it[1].arrival, it[0]),
            )
            head = head + future
        return head[: self.window]

    def choose(self, ctx: PolicyContext) -> Decision | None:
        pending = list(ctx.pending)
        if not pending:
            return None
        window = self._window_of(ctx)
        members = frozenset(i for i, _ in window)
        remaining = frozenset(e[0] for e in self._plan[self._cursor :])
        if not self._planned or not members <= remaining:
            # membership changed (or first decision point): re-plan the
            # window from the live allocator state
            self._plan, self._plan_span, nodes = _search_window(
                ctx, window, list(ctx.running), node_budget=self.node_budget
            )
            self._cursor = 0
            self._planned = True
            self.replans += 1
            self.nodes_explored += nodes
        index, req, size, start, grid = self._plan[self._cursor]
        tol = _plan_tolerance(start, self._plan_span)
        if ctx.now < start - tol or ctx.now < req.arrival:
            # the plan idles until its next start (the arrival check keeps
            # the tolerance floor from committing before the head's own
            # arrival): let arrived requests beyond the window backfill
            # against that reservation
            return self._backfill_beyond(ctx, members, start)
        require(
            ctx.now <= start + tol,
            ParameterError,
            "horizon plan diverged from the event loop (planned start "
            f"{start!r}, loop reached {ctx.now!r})",
        )
        cand = ctx.price(req, size)
        if cand is None or cand.grid != grid:
            # more releases land at this same timestamp; wait for them
            return None
        self._cursor += 1
        return Decision(index, req, cand)

    def _backfill_beyond(
        self, ctx: PolicyContext, members: frozenset[int], reserve: float
    ) -> Decision | None:
        """Conservative backfill of non-window arrivals before ``reserve``.

        Identical to :class:`BackfillPolicy`'s guarded scoring with the
        plan's next start as the reservation: a placement is admitted
        only if every way of running it finishes by ``reserve``, so its
        block coalesces back before the plan touches the pool again and
        the planned grids still preview exactly as modeled.
        """
        for jndex, jreq in lpt_order(ctx):
            if jndex in members:
                continue
            cand = ctx.best_candidate(jreq, ctx.rest_area(jndex), deadline=reserve)
            if cand is not None:
                return Decision(jndex, jreq, cand)
        return None


#: policy registry: the names ``--policy`` and ``Cluster(policy=...)`` accept
POLICIES: dict[str, type[PackingPolicy]] = {
    LPTPolicy.name: LPTPolicy,
    BackfillPolicy.name: BackfillPolicy,
    OptimalPolicy.name: OptimalPolicy,
    HorizonPolicy.name: HorizonPolicy,
}


def make_policy(policy: "PackingPolicy | str | None") -> PackingPolicy:
    """Resolve ``policy`` to an instance: name, instance, or None (LPT)."""
    if policy is None:
        return LPTPolicy()
    if isinstance(policy, PackingPolicy):
        return policy
    if isinstance(policy, str):
        cls = POLICIES.get(policy)
        require(
            cls is not None,
            ParameterError,
            f"unknown packing policy {policy!r} (choose from "
            f"{sorted(POLICIES)})",
        )
        return cls()
    raise ParameterError(
        f"policy must be a PackingPolicy, a name, or None, got {type(policy).__name__}"
    )
