"""Pack a queue of heterogeneous requests onto the subgrid pool.

The scheduler is an event-driven list scheduler over the modeled costs:

* at every decision point the arrived, still-unplaced requests are
  considered longest-first (LPT — the classical makespan heuristic);
* for each request every candidate subgrid size the pool can currently
  serve is priced as ``finish = now + staging + execution``, where
  *staging* is the exact :mod:`repro.dist.routing` migration cost of the
  request's resident operands onto the concrete candidate subgrid
  (:meth:`SubgridAllocator.preview` exposes it before committing) and
  *execution* is the request's closed-form model on that size;
* a placement is scored ``max(finish, area bound)`` where the *area
  bound* is ``now + (remaining queue's rank-seconds + this placement's
  rank-seconds) / capacity`` — a finish-time-greedy rule would grab the
  whole machine whenever the full grid is marginally faster per request
  and serialize the queue behind it; charging each candidate for the
  capacity it consumes is what makes the scheduler *pack*.  The
  minimum-score (request, size) pair is committed; ties prefer the
  smaller subgrid;
* when nothing fits, time advances to the earliest running finish and its
  subgrid coalesces back into the pool.

The result is a :class:`Schedule`: per-request assignments with modeled
start/finish plus the aggregate makespan and occupancy.  Execution
(:meth:`repro.api.Cluster.run`) replays the assignments in start order on
the real simulated machine — the machine's group-synchronization semantics
reproduce the packing, since charges only advance the clocks of the ranks
they touch.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Protocol, Sequence

from repro.machine.cost import Cost, CostParams
from repro.machine.topology import ProcessorGrid
from repro.machine.validate import ParameterError, require
from repro.sched.allocator import SubgridAllocator


class SchedulableRequest(Protocol):
    """What the scheduler needs from a request (see ``repro.api.requests``)."""

    arrival: float

    def candidate_sizes(self, capacity: int) -> list[int]: ...

    def modeled_cost(self, size: int, params: CostParams) -> Cost: ...

    def staging_cost(self, grid: ProcessorGrid, params: CostParams) -> Cost: ...


@dataclass
class Assignment:
    """One request placed on one subgrid for one modeled time window."""

    index: int
    request: object
    grid: ProcessorGrid
    size: int
    start: float
    staging_seconds: float
    exec_seconds: float
    finish: float
    staging: Cost = field(default_factory=Cost.zero)
    modeled: Cost = field(default_factory=Cost.zero)


@dataclass
class Schedule:
    """The packed queue: assignments in start order plus aggregates."""

    assignments: list[Assignment]
    capacity: int

    @property
    def makespan(self) -> float:
        """Modeled completion time of the whole queue."""
        return max((a.finish for a in self.assignments), default=0.0)

    def occupancy(self) -> float:
        """Busy rank-seconds over available rank-seconds (0..1)."""
        span = self.makespan
        if span <= 0.0:
            return 0.0
        busy = sum(a.size * (a.finish - a.start) for a in self.assignments)
        return busy / (self.capacity * span)

    def throughput(self) -> float:
        """Completed requests per modeled second."""
        span = self.makespan
        return len(self.assignments) / span if span > 0.0 else 0.0


class Scheduler:
    """Event-driven LPT packing of requests onto a :class:`SubgridAllocator`."""

    def __init__(self, allocator: SubgridAllocator, params: CostParams | None = None):
        self.allocator = allocator
        self.params = params or CostParams()

    def schedule(self, requests: Sequence[SchedulableRequest]) -> Schedule:
        """Pack ``requests``; the pool is drained again when this returns."""
        alloc = self.allocator
        params = self.params
        require(
            alloc.drained(),
            ParameterError,
            "scheduling needs a drained pool (release running leases first)",
        )
        pending = list(enumerate(requests))
        running: list[tuple[float, int, Assignment]] = []  # (finish, seq, a)
        out: list[Assignment] = []
        now, seq = 0.0, 0

        def exec_seconds(req: SchedulableRequest, size: int) -> float:
            return req.modeled_cost(size, params).time(params)

        def min_area(req: SchedulableRequest) -> float:
            """Fewest rank-seconds any placement of ``req`` consumes."""
            return min(
                (s * exec_seconds(req, s) for s in req.candidate_sizes(alloc.capacity)),
                default=0.0,
            )

        while pending or running:
            placed = True
            while placed:
                placed = False
                arrived = [it for it in pending if it[1].arrival <= now]
                # LPT: longest best-case execution first.
                arrived.sort(
                    key=lambda it: -min(
                        (exec_seconds(it[1], s) for s in it[1].candidate_sizes(alloc.capacity)),
                        default=0.0,
                    )
                )
                for index, req in arrived:
                    rest_area = sum(
                        min_area(r) for j, r in pending if j != index
                    )
                    best: tuple[float, float, int, Cost, Cost] | None = None
                    for size in req.candidate_sizes(alloc.capacity):
                        grid = alloc.preview(size)
                        if grid is None:
                            continue
                        staging = req.staging_cost(grid, params)
                        modeled = req.modeled_cost(size, params)
                        duration = staging.time(params) + modeled.time(params)
                        finish = now + duration
                        # Score the placement by its own finish AND the area
                        # bound it leaves the rest of the queue with.
                        score = max(
                            finish, now + (rest_area + size * duration) / alloc.capacity
                        )
                        # Strictly-better score wins; near-ties (1 ppm) take
                        # the smaller subgrid to keep capacity for the queue.
                        if best is None or score < best[0] * (1.0 - 1e-6):
                            best = (score, finish, size, staging, modeled)
                        elif score <= best[0] * (1.0 + 1e-6) and size < best[2]:
                            best = (score, finish, size, staging, modeled)
                    if best is None:
                        continue
                    _, finish, size, staging, modeled = best
                    grid = alloc.allocate(size)
                    assert grid is not None  # preview said it fits
                    a = Assignment(
                        index=index,
                        request=req,
                        grid=grid,
                        size=size,
                        start=now,
                        staging_seconds=staging.time(params),
                        exec_seconds=modeled.time(params),
                        finish=finish,
                        staging=staging,
                        modeled=modeled,
                    )
                    heapq.heappush(running, (finish, seq, a))
                    seq += 1
                    out.append(a)
                    pending.remove((index, req))
                    placed = True
                    break  # re-rank the queue against the shrunken pool
            # Advance to the next event: the earliest running finish OR the
            # next arrival, whichever comes first — a request arriving while
            # others run must be considered as soon as it arrives, not when
            # the next tenant happens to finish (free capacity may be idle).
            next_arrival = min(
                (it[1].arrival for it in pending if it[1].arrival > now),
                default=None,
            )
            if running:
                next_finish = running[0][0]
                if next_arrival is not None and next_arrival < next_finish:
                    now = next_arrival
                else:
                    finish, _, done = heapq.heappop(running)
                    alloc.release(done.grid)
                    now = max(now, finish)
            elif next_arrival is not None:
                # Nothing running and nothing placeable has arrived yet.
                now = next_arrival
            require(
                not (not running and pending and all(it[1].arrival <= now for it in pending)
                     and not any(
                         alloc.can_allocate(s)
                         for it in pending
                         for s in it[1].candidate_sizes(alloc.capacity)
                     )),
                ParameterError,
                "a pending request fits no allocatable subgrid size",
            )
        out.sort(key=lambda a: (a.start, a.index))
        return Schedule(assignments=out, capacity=alloc.capacity)
