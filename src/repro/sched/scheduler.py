"""Pack a queue of heterogeneous requests onto the subgrid pool.

The scheduler is an event-driven list scheduler over the modeled costs.
It owns the *mechanics* of packing; the *decision rule* — which request
is placed on which subgrid size at each decision point — is a pluggable
:class:`~repro.sched.policies.PackingPolicy` (greedy LPT by default,
conservative backfilling and an exhaustive small-queue optimum as
alternatives; see :mod:`repro.sched.policies`).  The loop:

* at every decision point the policy is consulted with a
  :class:`~repro.sched.policies.PolicyContext` — the arrived, still
  unplaced requests, the running placements, and pricing helpers.  Every
  candidate subgrid size is priced as ``finish = now + staging +
  execution``, where *staging* is the exact :mod:`repro.dist.routing`
  migration cost of the request's resident operands onto the concrete
  candidate subgrid (:meth:`SubgridAllocator.preview` exposes it before
  committing) and *execution* is the request's closed-form model on that
  size.  With an operand cache (:mod:`repro.api.opcache`) the staging
  price is *cache-aware*: a target whose staged copy is still resident on
  the candidate subgrid prices at zero, so packing actively prefers
  subgrid affinity for streams of requests over the same operands.  The
  scheduler simulates the cache forward (a :class:`~repro.api.opcache.
  CachePlan`): committed placements add their staged keys, allocator
  destroy events (coalesce/re-split) evict, and both the per-target
  decisions and the eviction times are recorded on the result so
  execution replays the exact same hits;
* the default policy scores a placement ``max(finish, area bound)`` where
  the *area bound* is ``now + (remaining queue's rank-seconds + this
  placement's rank-seconds) / capacity`` — a finish-time-greedy rule
  would grab the whole machine whenever the full grid is marginally
  faster per request and serialize the queue behind it; charging each
  candidate for the capacity it consumes is what makes the scheduler
  *pack*.  Ties prefer the smaller subgrid;
* when the policy declines to place, time advances to the earliest
  running finish (its subgrid coalesces back into the pool) or the next
  arrival, whichever comes first.

The result is a :class:`Schedule`: per-request assignments with modeled
start/finish plus the aggregate makespan and occupancy.  Execution
(:meth:`repro.api.Cluster.run`) replays the assignments in start order on
the real simulated machine — the machine's group-synchronization semantics
reproduce the packing, since charges only advance the clocks of the ranks
they touch.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, Protocol, Sequence, TypeVar, overload

from repro.machine.cost import Cost, CostParams
from repro.machine.topology import ProcessorGrid
from repro.machine.validate import ParameterError, require
from repro.sched.allocator import SubgridAllocator
from repro.sched.policies import PackingPolicy, PolicyContext, make_policy
from repro.sched.pricing import PricingMemo

if TYPE_CHECKING:
    from repro.api.opcache import CachePlan, OperandCache


class SchedulableRequest(Protocol):
    """What the scheduler needs from a request (see ``repro.api.requests``)."""

    arrival: float

    def candidate_sizes(self, capacity: int) -> list[int]: ...

    def modeled_cost(self, size: int, params: CostParams) -> Cost: ...

    def staging_cost(self, grid: ProcessorGrid, params: CostParams) -> Cost: ...


_T = TypeVar("_T")


class _LazyList(Sequence[_T]):
    """A sequence materialized on first access.

    The event loop builds a :class:`~repro.sched.policies.PolicyContext`
    for every policy consultation, but most consultations never touch
    ``pending`` or ``running`` (the pricing helpers route through the
    memo and the pre-filtered arrived list).  Deferring the sort/copy
    behind this wrapper makes context construction O(1) while keeping the
    attributes plain sequences for any policy that does iterate them.
    """

    __slots__ = ("_build", "_items")

    def __init__(self, build: Callable[[], list[_T]]) -> None:
        self._build = build
        self._items: list[_T] | None = None

    def _materialize(self) -> list[_T]:
        if self._items is None:
            self._items = self._build()
        return self._items

    def __iter__(self) -> Iterator[_T]:
        return iter(self._materialize())

    def __len__(self) -> int:
        return len(self._materialize())

    @overload
    def __getitem__(self, i: int) -> _T: ...

    @overload
    def __getitem__(self, i: slice) -> Sequence[_T]: ...

    def __getitem__(self, i: int | slice) -> "_T | Sequence[_T]":
        return self._materialize()[i]


@dataclass(slots=True)
class Assignment:
    """One request placed on one subgrid for one modeled time window."""

    index: int
    request: object
    grid: ProcessorGrid
    size: int
    start: float
    staging_seconds: float
    exec_seconds: float
    finish: float
    staging: Cost = field(default_factory=Cost.zero)
    modeled: Cost = field(default_factory=Cost.zero)
    #: cache-aware staging: the migration cost *not* paid because valid
    #: staged copies were resident, and the per-resident-target decision
    #: counts the pricing committed to (execution must reproduce them)
    staging_saved: Cost = field(default_factory=Cost.zero)
    staging_saved_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0


@dataclass(slots=True)
class Schedule:
    """The packed queue: assignments in start order plus aggregates."""

    assignments: list[Assignment]
    capacity: int
    #: allocator destroy events ``(modeled time, block grid)`` in event
    #: order — the Cluster replays these against the real operand cache
    #: so measured evictions mirror the modeled ones
    evictions: list[tuple[float, ProcessorGrid]] = field(default_factory=list)
    #: name of the packing policy that produced this schedule
    policy: str = "lpt"
    #: staging-target traffic of the pass's PricingMemo (0/0 when the
    #: pricing cache was off) — the hit/miss rates telemetry surfaces
    pricing_hits: int = 0
    pricing_misses: int = 0

    @property
    def makespan(self) -> float:
        """Modeled completion time of the whole queue."""
        return max((a.finish for a in self.assignments), default=0.0)

    def occupancy(self) -> float:
        """Busy rank-seconds over available rank-seconds (0..1)."""
        span = self.makespan
        if span <= 0.0:
            return 0.0
        busy = sum(a.size * (a.finish - a.start) for a in self.assignments)
        return busy / (self.capacity * span)

    def throughput(self) -> float:
        """Completed requests per modeled second."""
        span = self.makespan
        return len(self.assignments) / span if span > 0.0 else 0.0


class Scheduler:
    """Event-driven packing of requests onto a :class:`SubgridAllocator`.

    ``policy`` selects the packing decision rule — a
    :class:`~repro.sched.policies.PackingPolicy` instance, a registry name
    (``"lpt"``, ``"backfill"``, ``"optimal"``, ``"horizon"``), or ``None``
    for the default greedy LPT.  ``cache`` (an
    :class:`~repro.api.opcache.OperandCache`, optional) makes staging
    prices cache-aware; without one the scheduler prices every placement
    at the full migration cost.  Policies that pre-plan their timeline
    (``requires_uncached``) cannot be combined with a cache — the prices
    they planned with must be the prices the commit pays.
    """

    def __init__(
        self,
        allocator: SubgridAllocator,
        params: CostParams | None = None,
        cache: "OperandCache | None" = None,
        policy: PackingPolicy | str | None = None,
        pricing_cache: bool = True,
    ) -> None:
        self.allocator = allocator
        self.params = params or CostParams()
        self.policy = make_policy(policy)
        require(
            not (self.policy.requires_uncached and cache is not None),
            ParameterError,
            f"policy {self.policy.name!r} pre-plans its timeline and cannot "
            "be combined with an operand cache (pass cache=None, or "
            "Cluster(cache=False))",
        )
        self.cache = cache
        #: memoize pricing across decision points (bit-identical schedules;
        #: pass False to re-derive every price, the pre-memo behavior)
        self.pricing_cache = bool(pricing_cache)

    def schedule(self, requests: Sequence[SchedulableRequest]) -> Schedule:
        """Pack ``requests``; the pool is drained again when this returns."""
        alloc = self.allocator
        params = self.params
        require(
            alloc.drained(),
            ParameterError,
            "scheduling needs a drained pool (release running leases first)",
        )
        self.policy.reset(requests)
        items = list(enumerate(requests))
        memo: PricingMemo | None = None
        if self.pricing_cache:
            memo = PricingMemo(params, alloc.capacity)
            memo.seed(items)
        # The event queue: requests not yet arrived, in (arrival, index)
        # order behind ``ptr``; arrived-but-unplaced requests live in
        # ``arrived``, kept index-sorted (the queue order policies see).
        # Advancing an arrival is a pointer bump, committing a placement a
        # bisect — no O(queue) scan per event.
        future = sorted(items, key=lambda it: (it[1].arrival, it[0]))
        ptr = 0
        arrived: list[tuple[int, SchedulableRequest]] = []
        running: list[tuple[float, int, Assignment]] = []  # (finish, seq, a)
        out: list[Assignment] = []
        now, seq = 0.0, 0
        view: "CachePlan | None" = (
            self.cache.plan() if self.cache is not None else None
        )
        evictions: list[tuple[float, ProcessorGrid]] = []

        def drain_arrivals() -> None:
            nonlocal ptr
            while ptr < len(future) and future[ptr][1].arrival <= now:
                insort(arrived, future[ptr], key=lambda it: it[0])
                ptr += 1

        def pending_view() -> list[tuple[int, SchedulableRequest]]:
            # all unplaced requests in index order (what ``pending`` was)
            return sorted(arrived + future[ptr:], key=lambda it: it[0])

        def running_view() -> list[tuple[float, int, int, ProcessorGrid]]:
            return [
                (a.finish, a.index, a.size, a.grid)
                for _, _, a in sorted(running, key=lambda r: r[:2])
            ]

        def remove_pending(index: int) -> None:
            pos = bisect_left(arrived, index, key=lambda it: it[0])
            if pos < len(arrived) and arrived[pos][0] == index:
                del arrived[pos]
                return
            # a policy placed a request before its arrival drained; keep
            # the future queue consistent (never happens for the built-ins)
            for j in range(ptr, len(future)):
                if future[j][0] == index:
                    del future[j]
                    return
            raise AssertionError(f"placed request {index} is not pending")

        def candidate_sizes(req: SchedulableRequest) -> list[int]:
            if memo is not None:
                return memo.sizes(req)
            return req.candidate_sizes(alloc.capacity)

        def staging_for(
            req: SchedulableRequest, grid: ProcessorGrid
        ) -> tuple[Cost, Cost, tuple]:
            """(charged, saved, per-target decisions) for one placement."""
            if memo is not None:
                return memo.staging(req, grid, view)
            breakdown = getattr(req, "staging_breakdown", None)
            if view is None or breakdown is None:
                return req.staging_cost(grid, params), Cost.zero(), ()
            return breakdown(grid, params, view)

        def on_destroy(grid: ProcessorGrid) -> None:
            # A block stopped existing: its staged copies die with it, in
            # the planned view now and (via the recorded event time) in
            # the real cache when execution reaches this point.
            assert view is not None  # only installed when a cache view exists
            view.evict_grid(grid)
            evictions.append((now, grid))

        prev_hook = alloc.on_destroy
        if view is not None:
            alloc.on_destroy = on_destroy
        try:
            prev_state: tuple[float, int, int] | None = None
            drain_arrivals()
            while arrived or ptr < len(future) or running:
                # A legal iteration places (seq grows), pops a finish
                # (running shrinks), or advances the clock; anything else
                # means the policy declined forever — fail loudly instead
                # of spinning.
                state = (now, seq, len(running))
                require(
                    state != prev_state,
                    ParameterError,
                    f"scheduler stalled at t={now!r}: policy "
                    f"{self.policy.name!r} places nothing and no event can "
                    "advance time",
                )
                prev_state = state
                placed = True
                while placed:
                    placed = False
                    ctx = PolicyContext(
                        now=now,
                        allocator=alloc,
                        params=params,
                        pending=_LazyList(pending_view),
                        running=_LazyList(running_view),
                        pricer=staging_for,
                        arrived=arrived,
                        memo=memo,
                    )
                    decision = self.policy.choose(ctx)
                    if decision is None:
                        continue
                    index, req, cand = (
                        decision.index,
                        decision.request,
                        decision.candidate,
                    )
                    grid = alloc.allocate(cand.size)
                    assert grid is not None  # the candidate came from preview
                    if view is not None:
                        for key, target_grid, _, hit in cand.targets:
                            if not hit:
                                view.add(key, target_grid)
                    a = Assignment(
                        index=index,
                        request=req,
                        grid=grid,
                        size=cand.size,
                        start=now,
                        staging_seconds=cand.staging.time(params),
                        exec_seconds=cand.modeled.time(params),
                        finish=cand.finish,
                        staging=cand.staging,
                        modeled=cand.modeled,
                        staging_saved=cand.saved,
                        staging_saved_seconds=cand.saved.time(params),
                        cache_hits=sum(1 for t in cand.targets if t[3]),
                        cache_misses=sum(1 for t in cand.targets if not t[3]),
                    )
                    heapq.heappush(running, (cand.finish, seq, a))
                    seq += 1
                    out.append(a)
                    remove_pending(index)
                    if memo is not None:
                        memo.remove(index)
                    placed = True  # re-consult against the shrunken pool
                # Advance to the next event: the earliest running finish OR the
                # next arrival, whichever comes first — a request arriving while
                # others run must be considered as soon as it arrives, not when
                # the next tenant happens to finish (free capacity may be idle).
                # Everything behind ``ptr`` has arrived (drained below), so the
                # next arrival is the head of the future queue.
                next_arrival = future[ptr][1].arrival if ptr < len(future) else None
                if running:
                    next_finish = running[0][0]
                    if next_arrival is not None and next_arrival < next_finish:
                        now = next_arrival
                    else:
                        finish, _, done = heapq.heappop(running)
                        # Advance the clock before releasing: a coalesce
                        # eviction triggered by this release must be stamped
                        # with the time the tenancy actually ended.
                        now = max(now, finish)
                        alloc.release(done.grid)
                elif next_arrival is not None:
                    # Nothing running and nothing placeable has arrived yet.
                    now = next_arrival
                drain_arrivals()
                require(
                    not (not running and arrived and ptr >= len(future)
                         and not any(
                             alloc.can_allocate(s)
                             for it in arrived
                             for s in candidate_sizes(it[1])
                         )),
                    ParameterError,
                    "a pending request fits no allocatable subgrid size",
                )
        finally:
            alloc.on_destroy = prev_hook
        out.sort(key=lambda a: (a.start, a.index))
        return Schedule(
            assignments=out,
            capacity=alloc.capacity,
            evictions=evictions,
            policy=self.policy.name,
            pricing_hits=memo.hits if memo is not None else 0,
            pricing_misses=memo.misses if memo is not None else 0,
        )
