"""Pack a queue of heterogeneous requests onto the subgrid pool.

The scheduler is an event-driven list scheduler over the modeled costs:

* at every decision point the arrived, still-unplaced requests are
  considered longest-first (LPT — the classical makespan heuristic);
* for each request every candidate subgrid size the pool can currently
  serve is priced as ``finish = now + staging + execution``, where
  *staging* is the exact :mod:`repro.dist.routing` migration cost of the
  request's resident operands onto the concrete candidate subgrid
  (:meth:`SubgridAllocator.preview` exposes it before committing) and
  *execution* is the request's closed-form model on that size.  With an
  operand cache (:mod:`repro.api.opcache`) the staging price is
  *cache-aware*: a target whose staged copy is still resident on the
  candidate subgrid prices at zero, so LPT packing actively prefers
  subgrid affinity for streams of requests over the same operands.  The
  scheduler simulates the cache forward (a :class:`~repro.api.opcache.
  CachePlan`): committed placements add their staged keys, allocator
  destroy events (coalesce/re-split) evict, and both the per-target
  decisions and the eviction times are recorded on the result so
  execution replays the exact same hits;
* a placement is scored ``max(finish, area bound)`` where the *area
  bound* is ``now + (remaining queue's rank-seconds + this placement's
  rank-seconds) / capacity`` — a finish-time-greedy rule would grab the
  whole machine whenever the full grid is marginally faster per request
  and serialize the queue behind it; charging each candidate for the
  capacity it consumes is what makes the scheduler *pack*.  The
  minimum-score (request, size) pair is committed; ties prefer the
  smaller subgrid;
* when nothing fits, time advances to the earliest running finish and its
  subgrid coalesces back into the pool.

The result is a :class:`Schedule`: per-request assignments with modeled
start/finish plus the aggregate makespan and occupancy.  Execution
(:meth:`repro.api.Cluster.run`) replays the assignments in start order on
the real simulated machine — the machine's group-synchronization semantics
reproduce the packing, since charges only advance the clocks of the ranks
they touch.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Protocol, Sequence

from repro.machine.cost import Cost, CostParams
from repro.machine.topology import ProcessorGrid
from repro.machine.validate import ParameterError, require
from repro.sched.allocator import SubgridAllocator


class SchedulableRequest(Protocol):
    """What the scheduler needs from a request (see ``repro.api.requests``)."""

    arrival: float

    def candidate_sizes(self, capacity: int) -> list[int]: ...

    def modeled_cost(self, size: int, params: CostParams) -> Cost: ...

    def staging_cost(self, grid: ProcessorGrid, params: CostParams) -> Cost: ...


@dataclass
class Assignment:
    """One request placed on one subgrid for one modeled time window."""

    index: int
    request: object
    grid: ProcessorGrid
    size: int
    start: float
    staging_seconds: float
    exec_seconds: float
    finish: float
    staging: Cost = field(default_factory=Cost.zero)
    modeled: Cost = field(default_factory=Cost.zero)
    #: cache-aware staging: the migration cost *not* paid because valid
    #: staged copies were resident, and the per-resident-target decision
    #: counts the pricing committed to (execution must reproduce them)
    staging_saved: Cost = field(default_factory=Cost.zero)
    staging_saved_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0


@dataclass
class Schedule:
    """The packed queue: assignments in start order plus aggregates."""

    assignments: list[Assignment]
    capacity: int
    #: allocator destroy events ``(modeled time, block grid)`` in event
    #: order — the Cluster replays these against the real operand cache
    #: so measured evictions mirror the modeled ones
    evictions: list[tuple[float, ProcessorGrid]] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        """Modeled completion time of the whole queue."""
        return max((a.finish for a in self.assignments), default=0.0)

    def occupancy(self) -> float:
        """Busy rank-seconds over available rank-seconds (0..1)."""
        span = self.makespan
        if span <= 0.0:
            return 0.0
        busy = sum(a.size * (a.finish - a.start) for a in self.assignments)
        return busy / (self.capacity * span)

    def throughput(self) -> float:
        """Completed requests per modeled second."""
        span = self.makespan
        return len(self.assignments) / span if span > 0.0 else 0.0


class Scheduler:
    """Event-driven LPT packing of requests onto a :class:`SubgridAllocator`.

    ``cache`` (an :class:`~repro.api.opcache.OperandCache`, optional) makes
    staging prices cache-aware; without one the scheduler prices every
    placement at the full migration cost, exactly as before.
    """

    def __init__(
        self,
        allocator: SubgridAllocator,
        params: CostParams | None = None,
        cache=None,
    ):
        self.allocator = allocator
        self.params = params or CostParams()
        self.cache = cache

    def schedule(self, requests: Sequence[SchedulableRequest]) -> Schedule:
        """Pack ``requests``; the pool is drained again when this returns."""
        alloc = self.allocator
        params = self.params
        require(
            alloc.drained(),
            ParameterError,
            "scheduling needs a drained pool (release running leases first)",
        )
        pending = list(enumerate(requests))
        running: list[tuple[float, int, Assignment]] = []  # (finish, seq, a)
        out: list[Assignment] = []
        now, seq = 0.0, 0
        view = self.cache.plan() if self.cache is not None else None
        evictions: list[tuple[float, ProcessorGrid]] = []

        def staging_for(req: SchedulableRequest, grid: ProcessorGrid):
            """(charged, saved, per-target decisions) for one placement."""
            breakdown = getattr(req, "staging_breakdown", None)
            if view is None or breakdown is None:
                return req.staging_cost(grid, params), Cost.zero(), ()
            return breakdown(grid, params, view)

        def exec_seconds(req: SchedulableRequest, size: int) -> float:
            return req.modeled_cost(size, params).time(params)

        def min_area(req: SchedulableRequest) -> float:
            """Fewest rank-seconds any placement of ``req`` consumes."""
            return min(
                (s * exec_seconds(req, s) for s in req.candidate_sizes(alloc.capacity)),
                default=0.0,
            )

        def on_destroy(grid: ProcessorGrid) -> None:
            # A block stopped existing: its staged copies die with it, in
            # the planned view now and (via the recorded event time) in
            # the real cache when execution reaches this point.
            view.evict_grid(grid)
            evictions.append((now, grid))

        prev_hook = alloc.on_destroy
        if view is not None:
            alloc.on_destroy = on_destroy
        try:
            while pending or running:
                placed = True
                while placed:
                    placed = False
                    arrived = [it for it in pending if it[1].arrival <= now]
                    # LPT: longest best-case execution first.
                    arrived.sort(
                        key=lambda it: -min(
                            (exec_seconds(it[1], s) for s in it[1].candidate_sizes(alloc.capacity)),
                            default=0.0,
                        )
                    )
                    for index, req in arrived:
                        rest_area = sum(
                            min_area(r) for j, r in pending if j != index
                        )
                        best = None
                        for size in req.candidate_sizes(alloc.capacity):
                            grid = alloc.preview(size)
                            if grid is None:
                                continue
                            staging, saved, targets = staging_for(req, grid)
                            modeled = req.modeled_cost(size, params)
                            duration = staging.time(params) + modeled.time(params)
                            finish = now + duration
                            # Score the placement by its own finish AND the area
                            # bound it leaves the rest of the queue with.
                            score = max(
                                finish, now + (rest_area + size * duration) / alloc.capacity
                            )
                            # Strictly-better score wins; near-ties (1 ppm) take
                            # the smaller subgrid to keep capacity for the queue.
                            if (
                                best is None
                                or score < best[0] * (1.0 - 1e-6)
                                or (score <= best[0] * (1.0 + 1e-6) and size < best[2])
                            ):
                                best = (score, finish, size, staging, modeled, saved, targets)
                        if best is None:
                            continue
                        _, finish, size, staging, modeled, saved, targets = best
                        grid = alloc.allocate(size)
                        assert grid is not None  # preview said it fits
                        if view is not None:
                            for key, target_grid, _, hit in targets:
                                if not hit:
                                    view.add(key, target_grid)
                        a = Assignment(
                            index=index,
                            request=req,
                            grid=grid,
                            size=size,
                            start=now,
                            staging_seconds=staging.time(params),
                            exec_seconds=modeled.time(params),
                            finish=finish,
                            staging=staging,
                            modeled=modeled,
                            staging_saved=saved,
                            staging_saved_seconds=saved.time(params),
                            cache_hits=sum(1 for t in targets if t[3]),
                            cache_misses=sum(1 for t in targets if not t[3]),
                        )
                        heapq.heappush(running, (finish, seq, a))
                        seq += 1
                        out.append(a)
                        pending.remove((index, req))
                        placed = True
                        break  # re-rank the queue against the shrunken pool
                # Advance to the next event: the earliest running finish OR the
                # next arrival, whichever comes first — a request arriving while
                # others run must be considered as soon as it arrives, not when
                # the next tenant happens to finish (free capacity may be idle).
                next_arrival = min(
                    (it[1].arrival for it in pending if it[1].arrival > now),
                    default=None,
                )
                if running:
                    next_finish = running[0][0]
                    if next_arrival is not None and next_arrival < next_finish:
                        now = next_arrival
                    else:
                        finish, _, done = heapq.heappop(running)
                        # Advance the clock before releasing: a coalesce
                        # eviction triggered by this release must be stamped
                        # with the time the tenancy actually ended.
                        now = max(now, finish)
                        alloc.release(done.grid)
                elif next_arrival is not None:
                    # Nothing running and nothing placeable has arrived yet.
                    now = next_arrival
                require(
                    not (not running and pending and all(it[1].arrival <= now for it in pending)
                         and not any(
                             alloc.can_allocate(s)
                             for it in pending
                             for s in it[1].candidate_sizes(alloc.capacity)
                         )),
                    ParameterError,
                    "a pending request fits no allocatable subgrid size",
                )
        finally:
            alloc.on_destroy = prev_hook
        out.sort(key=lambda a: (a.start, a.index))
        return Schedule(assignments=out, capacity=alloc.capacity, evictions=evictions)
