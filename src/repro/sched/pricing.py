"""Incremental pricing cache: memoized request pricing for the scheduler.

Pricing a single placement is cheap, but the event loop prices every
arrived request at every candidate size at every decision point, and the
area bound re-prices the *whole* remaining queue each time — an
O(queue²·sizes) pattern that dominates serve-scale replays.  Almost all
of those prices are recomputations: ``candidate_sizes``, ``modeled_cost``
and the raw staging targets are pure in the request's *pricing identity*
(its shapes, algorithm knobs and operand handles), not in the object.

:class:`PricingMemo` exploits that purity.  Requests expose a
``pricing_key()`` (see :meth:`repro.api.requests.Request.pricing_key`);
two requests with equal keys are priced identically and share one memo
row, so a stream of a thousand same-shape solves prices like one.
Requests without a key (or foreign objects that merely satisfy the
scheduler protocol) fall back to per-object memoization, and staging is
memoized only for requests whose staging hooks are the stock
:class:`~repro.api.requests.Request` implementations — an overridden
hook is treated as opaque and called through every time, so subclassing
can never observe stale prices.

What is and is not cached:

* **cached across calls**: candidate sizes, modeled costs, execution
  seconds, minimum areas, and the *raw staging targets* — the
  ``(cache key, target grid, migration cost)`` triples per concrete
  subgrid, whose routing plans are the expensive part (and are
  themselves shared via :func:`repro.dist.routing.routing_plan`);
* **replayed fresh on every call**: the cache hit/miss decisions.  The
  scheduler's :class:`~repro.api.opcache.CachePlan` view mutates as
  placements commit and blocks coalesce, so
  :meth:`PricingMemo.staging` re-runs the exact hit logic of
  ``Request.staging_breakdown`` against the *current* view over the
  memoized raw targets — bit-identical to the uncached path by
  construction (the parity suite in ``tests/test_throughput.py`` pins
  this);
* **invalidated implicitly**: a memo lives for one ``schedule()`` pass.
  Operand generations (part of every cache key) only change when
  execution mutates a matrix, which never happens while a pass is
  pricing, and allocator split/coalesce changes which *grid* is priced —
  a different memo row — so no explicit invalidation hook is needed.

The queue-area aggregate (:meth:`rest_area`) is maintained
incrementally: seeded once, one subtraction per commit, one subtraction
per query — replacing the reference's full re-sum.  The incremental
float sums can differ from the re-sum in the last ulp; the policies'
1 ppm score tie band absorbs that, and the golden-schedule tests pin
that the schedules stay identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

from repro.dist.redistribute import staging_plan
from repro.machine.cost import Cost, CostParams

if TYPE_CHECKING:
    from repro.api.opcache import CachePlan
    from repro.machine.topology import ProcessorGrid


class PricingMemo:
    """Memoized pricing hooks for one scheduling pass.

    One instance per :meth:`~repro.sched.scheduler.Scheduler.schedule`
    call: create, :meth:`seed` with the enumerated queue, consult through
    the :class:`~repro.sched.policies.PolicyContext` helpers, and
    :meth:`remove` each request as it commits.
    """

    __slots__ = (
        "params",
        "capacity",
        "hits",
        "misses",
        "_keys",
        "_sizes",
        "_modeled",
        "_seconds",
        "_min_seconds",
        "_min_area",
        "_targets",
        "_area_by_index",
        "_area_total",
        "_request_base",
    )

    def __init__(self, params: CostParams, capacity: int) -> None:
        self.params = params
        self.capacity = int(capacity)
        #: staging-target memo traffic (for tests and reports)
        self.hits = 0
        self.misses = 0
        # id(req) -> (share key, req); the request reference keeps the id
        # stable for the memo's lifetime
        self._keys: dict[int, tuple[tuple, object]] = {}
        self._sizes: dict[tuple, list[int]] = {}
        self._modeled: dict[tuple, Cost] = {}
        self._seconds: dict[tuple, float] = {}
        self._min_seconds: dict[tuple, float] = {}
        self._min_area: dict[tuple, float] = {}
        self._targets: dict[tuple, tuple] = {}
        self._area_by_index: dict[int, float] = {}
        self._area_total = 0.0
        self._request_base: type | None = None

    # -- identity -----------------------------------------------------------

    def _key_of(self, req: Any) -> tuple:
        """The request's share key: equal keys share every memo row."""
        got = self._keys.get(id(req))
        if got is not None:
            return got[0]
        pricing_key = getattr(req, "pricing_key", None)
        key = pricing_key() if callable(pricing_key) else None
        share = ("req", key) if key is not None else ("obj", id(req))
        self._keys[id(req)] = (share, req)
        return share

    def _base(self) -> type:
        if self._request_base is None:
            # deferred: repro.api imports the scheduler package at load
            # time, so a module-level import here would be circular
            from repro.api.requests import Request

            self._request_base = Request
        return self._request_base

    def _stock_staging(self, req: Any) -> bool:
        """True iff both staging hooks are the stock Request implementations
        (the contract the raw-target memo and hit replay are valid under)."""
        Request = self._base()
        if not isinstance(req, Request):
            return False
        cls = type(req)
        return (
            cls.staging_cost is Request.staging_cost
            and cls.staging_breakdown is Request.staging_breakdown
        )

    # -- modeled execution ---------------------------------------------------

    def sizes(self, req: Any) -> list[int]:
        key = self._key_of(req)
        got = self._sizes.get(key)
        if got is None:
            got = self._sizes[key] = req.candidate_sizes(self.capacity)
        return got

    def modeled_cost(self, req: Any, size: int) -> Cost:
        key = (self._key_of(req), size)
        got = self._modeled.get(key)
        if got is None:
            got = self._modeled[key] = req.modeled_cost(size, self.params)
        return got

    def exec_seconds(self, req: Any, size: int) -> float:
        key = (self._key_of(req), size)
        got = self._seconds.get(key)
        if got is None:
            got = self._seconds[key] = self.modeled_cost(req, size).time(
                self.params
            )
        return got

    def min_exec_seconds(self, req: Any) -> float:
        key = self._key_of(req)
        got = self._min_seconds.get(key)
        if got is None:
            got = self._min_seconds[key] = min(
                (self.exec_seconds(req, s) for s in self.sizes(req)),
                default=0.0,
            )
        return got

    def min_area(self, req: Any) -> float:
        key = self._key_of(req)
        got = self._min_area.get(key)
        if got is None:
            got = self._min_area[key] = min(
                (s * self.exec_seconds(req, s) for s in self.sizes(req)),
                default=0.0,
            )
        return got

    # -- the queue-area aggregate -------------------------------------------

    def seed(self, items: Iterable[tuple[int, Any]]) -> None:
        """Register the enumerated queue for incremental area accounting."""
        self._area_by_index = {i: self.min_area(req) for i, req in items}
        self._area_total = sum(self._area_by_index.values())

    def remove(self, index: int) -> None:
        """A request committed: retire its area from the aggregate."""
        self._area_total -= self._area_by_index.pop(index)

    def rest_area(self, index: int) -> float:
        """Minimum rank-seconds the queue minus ``index`` still owes."""
        return self._area_total - self._area_by_index[index]

    # -- staging -------------------------------------------------------------

    def _raw_targets(self, req: Any, grid: "ProcessorGrid") -> tuple:
        """``(cache key, target grid, migration cost)`` per resident operand
        of ``req`` on the concrete subgrid ``grid`` (memoized — the routing
        plans behind the costs are the expensive part)."""
        key = (self._key_of(req), grid)
        got = self._targets.get(key)
        if got is not None:
            self.hits += 1
            return got
        self.misses += 1
        from repro.api.opcache import cache_key

        got = self._targets[key] = tuple(
            (cache_key(D, g, lay), g, staging_plan(D, g, lay).cost())
            for D, g, lay in req._staging_targets(grid, self.params)
        )
        return got

    def staging(
        self, req: Any, grid: "ProcessorGrid", view: "CachePlan | None"
    ) -> tuple[Cost, Cost, tuple]:
        """The scheduler's pricing hook: ``(charged, saved, targets)``.

        Mirrors the uncached hook exactly: without a cache view (or a
        ``staging_breakdown``) the full migration cost is charged; with
        one, the stock breakdown's hit logic is replayed over the
        memoized raw targets against the *live* view.  Requests with
        overridden staging hooks bypass the memo entirely.
        """
        breakdown = getattr(req, "staging_breakdown", None)
        if view is None or breakdown is None:
            return self.staging_cost(req, grid), Cost.zero(), ()
        if not self._stock_staging(req):
            return breakdown(grid, self.params, view)
        charged, saved = Cost.zero(), Cost.zero()
        targets = []
        staged_here: set = set()
        for key, target_grid, cost in self._raw_targets(req, grid):
            hit = key in view or key in staged_here
            if hit:
                saved = saved + cost
            else:
                charged = charged + cost
                staged_here.add(key)
            targets.append((key, target_grid, cost, hit))
        return charged, saved, tuple(targets)

    def staging_cost(self, req: Any, grid: "ProcessorGrid") -> Cost:
        """Plain (cache-blind) staging price, memoized when stock."""
        if not self._stock_staging(req):
            return req.staging_cost(grid, self.params)
        total = Cost.zero()
        for _key, _grid, cost in self._raw_targets(req, grid):
            total = total + cost
        return total
