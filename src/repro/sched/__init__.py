"""repro.sched: subgrid allocation and request scheduling.

The paper amortizes synchronization by running independent work on
*disjoint subgrids* (the Diagonal-Inverter inverts all ``n/n0`` blocks
concurrently; Section II-C3 cites the solve-many-times workload).  This
package turns that pattern into machinery the :mod:`repro.api` Cluster
front-end schedules arbitrary request queues with:

* :mod:`repro.sched.allocator` — :class:`SubgridAllocator`, a power-of-two
  quadrant pool over one root grid (buddy split/coalesce built on
  :meth:`~repro.machine.topology.ProcessorGrid.halves`);
* :mod:`repro.sched.scheduler` — :class:`Scheduler`, the event-driven
  packing loop: it prices each candidate placement with the request's
  closed-form cost model plus the exact :mod:`repro.dist.routing`
  migration cost of staging its operands, and replays the cache plan and
  eviction timeline;
* :mod:`repro.sched.policies` — the pluggable decision rules:
  :class:`LPTPolicy` (greedy longest-first, the default),
  :class:`BackfillPolicy` (conservative no-delay backfilling),
  :class:`OptimalPolicy` (exhaustive branch-and-bound ground truth for
  small queues), and :class:`HorizonPolicy` (the branch-and-bound on a
  sliding window with backfill beyond it — optimal-quality packing at
  any queue length).
"""

from repro.sched.allocator import SubgridAllocator
from repro.sched.policies import (
    POLICIES,
    BackfillPolicy,
    HorizonPolicy,
    LPTPolicy,
    OptimalPolicy,
    PackingPolicy,
    make_policy,
)
from repro.sched.scheduler import Assignment, Schedule, Scheduler

__all__ = [
    "SubgridAllocator",
    "Assignment",
    "Schedule",
    "Scheduler",
    "PackingPolicy",
    "LPTPolicy",
    "BackfillPolicy",
    "OptimalPolicy",
    "HorizonPolicy",
    "POLICIES",
    "make_policy",
]
