"""SubgridAllocator: a power-of-two quadrant pool over one processor grid.

The Diagonal-Inverter already proves the machine model supports concurrent
work on disjoint subgrids (every diagonal block inverts on its own grid);
this module generalizes the idea from "one algorithm's private split" to a
*pool* the Cluster front-end schedules arbitrary requests onto.

The pool is a buddy tree over a root :class:`~repro.machine.topology.
ProcessorGrid`.  A node splits into its two :meth:`ProcessorGrid.halves`
along the currently largest axis, so repeated splits of a square root grid
walk through halves and quadrants — every block is a contiguous
axis-aligned sub-rectangle of the root, and every block size is
``root.size / 2^j``.  Allocation finds the *smallest* free block that fits
and splits it down to the exact requested size; release coalesces buddy
pairs back up, so a drained pool always returns to the single free root
(the invariant ``tests/test_sched.py`` property-tests).

Grids handed out are plain :class:`ProcessorGrid` views — reshape them to
whatever topology the algorithm wants (``p1 x p1 x p2`` for It-Inv-TRSM, a
square for MM/RecTriInv); the ranks stay the block's ranks.
"""

from __future__ import annotations

from typing import Callable

from repro.machine.topology import ProcessorGrid
from repro.machine.validate import GridError, ParameterError, require
from repro.util.mathutil import is_power_of_two


class _Node:
    """One block of the buddy tree."""

    __slots__ = ("grid", "parent", "children", "allocated")

    def __init__(self, grid: ProcessorGrid, parent: "_Node | None" = None) -> None:
        self.grid = grid
        self.parent = parent
        self.children: tuple[_Node, _Node] | None = None
        self.allocated = False

    @property
    def free(self) -> bool:
        return not self.allocated and self.children is None

    def split(self) -> tuple["_Node", "_Node"]:
        """Halve along the largest axis (ties break toward the first axis)."""
        axis = max(range(self.grid.ndim), key=lambda a: self.grid.shape[a])
        require(
            self.grid.shape[axis] % 2 == 0,
            GridError,
            f"block of shape {self.grid.shape} cannot split further",
        )
        lo, hi = self.grid.halves(axis)
        self.children = (_Node(lo, self), _Node(hi, self))
        return self.children


class SubgridAllocator:
    """Split/coalesce pool of disjoint subgrids of one root grid."""

    def __init__(self, root: ProcessorGrid) -> None:
        require(
            is_power_of_two(root.size),
            ParameterError,
            f"the pool needs a power-of-two root, got {root.size} ranks",
        )
        self._root = _Node(root)
        self._leases: dict[ProcessorGrid, _Node] = {}
        #: optional hook called with every block *destroyed* by the pool —
        #: a free block split down to serve a smaller lease, or a buddy
        #: pair coalesced back into its parent on release.  The operand
        #: cache subscribes here: a staged copy lives exactly as long as
        #: the block it was staged onto, so destroying the block evicts it
        #: (see repro.api.opcache).
        self.on_destroy: Callable[[ProcessorGrid], None] | None = None

    # -- queries ------------------------------------------------------------

    @property
    def root_grid(self) -> ProcessorGrid:
        return self._root.grid

    @property
    def capacity(self) -> int:
        """Total ranks in the pool."""
        return self._root.grid.size

    def allocatable_sizes(self) -> list[int]:
        """Every block size the pool can ever produce (descending)."""
        sizes = []
        s = self.capacity
        while s >= 1:
            sizes.append(s)
            s //= 2
        return sizes

    def allocated_grids(self) -> list[ProcessorGrid]:
        """Currently leased subgrids."""
        return list(self._leases)

    def in_use(self) -> int:
        """Ranks currently leased."""
        return sum(g.size for g in self._leases)

    def drained(self) -> bool:
        """True iff nothing is leased and the pool has coalesced to the root."""
        return self._root.free

    def can_allocate(self, size: int) -> bool:
        return self.preview(size) is not None

    # -- allocate / release -------------------------------------------------

    def preview(self, size: int) -> ProcessorGrid | None:
        """The grid :meth:`allocate` would return for ``size`` — no mutation.

        The scheduler uses this to price a request's operand migration onto
        the *concrete* candidate subgrid before committing.  Returns ``None``
        when no free block can currently serve the size.
        """
        node = self._fit(size)
        if node is None:
            return None
        grid = node.grid
        while grid.size > size:
            axis = max(range(grid.ndim), key=lambda a: grid.shape[a])
            grid = grid.halves(axis)[0]
        return grid

    def allocate(self, size: int) -> ProcessorGrid | None:
        """Lease a subgrid of exactly ``size`` ranks (``None`` if full).

        ``size`` must be a power of two not exceeding the capacity.  The
        smallest free block that fits is split down (first half each time,
        so the result matches :meth:`preview`) and marked allocated.
        """
        require(
            is_power_of_two(size) and 1 <= size <= self.capacity,
            ParameterError,
            f"size must be a power of two in [1, {self.capacity}], got {size}",
        )
        node = self._fit(size)
        if node is None:
            return None
        while node.grid.size > size:
            self._destroyed(node.grid)
            node = node.split()[0]
        node.allocated = True
        self._leases[node.grid] = node
        return node.grid

    def lease_exact(self, grid: ProcessorGrid) -> ProcessorGrid:
        """Lease a *specific* block, splitting down along its path.

        The buddy tree is canonical in its lease set — splits exist only
        on the paths to leased blocks, everything else is coalesced — so
        re-leasing another pool's exact grids reconstructs that pool's
        state.  The hole-preview machinery is built on this: policies
        :meth:`clone` the pool, release and re-lease freely to answer
        "when would this fit?", and the real pool's destroy hook never
        fires.  Raises when ``grid`` is not a reachable block of this
        pool or overlaps an existing lease.
        """
        target = set(grid.ranks())
        node = self._root
        while set(node.grid.ranks()) != target:
            require(
                not node.allocated and target < set(node.grid.ranks()),
                ParameterError,
                f"{grid!r} is not a free block of this pool",
            )
            children = node.children
            if children is None:
                self._destroyed(node.grid)
                children = node.split()
            lo, hi = children
            node = lo if target <= set(lo.grid.ranks()) else hi
        require(
            node.free,
            ParameterError,
            f"{grid!r} is not a free block of this pool",
        )
        node.allocated = True
        self._leases[node.grid] = node
        return node.grid

    def clone(self) -> "SubgridAllocator":
        """A detached copy: same root, same leases, no destroy hook.

        The scheduler's policies simulate against clones (reservation
        lookahead, running-work-aware branch-and-bound), so what-if
        releases never emit destroy events on the real pool.
        """
        pool = SubgridAllocator(self._root.grid)
        for grid in self._leases:
            pool.lease_exact(grid)
        return pool

    def drained_clone(self) -> "SubgridAllocator":
        """A detached *empty* pool over the same root grid.

        A drained pool serves every block size at its canonical (first
        half each split) position, which is what the branch-and-bound
        lower bounds price against even while the live pool is busy —
        our cyclic layouts route the same word counts to every congruent
        block, so the canonical price stands in for any block of that
        size.
        """
        return SubgridAllocator(self._root.grid)

    def release(self, grid: ProcessorGrid) -> None:
        """Return a leased subgrid; buddy pairs coalesce back toward the root."""
        node = self._leases.pop(grid, None)
        require(node is not None, ParameterError, f"{grid!r} is not leased from this pool")
        node.allocated = False
        parent = node.parent
        while (
            parent is not None
            and parent.children is not None
            and all(c.free for c in parent.children)
        ):
            parent.children = None
            self._destroyed(parent.grid)
            parent = parent.parent

    # -- internals ----------------------------------------------------------

    def _destroyed(self, grid: ProcessorGrid) -> None:
        """Notify the subscriber that a block stopped existing as a unit.

        A coalesce reports the merged parent (it covers both destroyed
        children); a split reports the block being split.  Subscribers
        evict by rank intersection, so reporting the covering block is
        sufficient in both directions.
        """
        if self.on_destroy is not None:
            self.on_destroy(grid)

    def _fit(self, size: int) -> _Node | None:
        """Smallest free block with ``size`` ranks or more (DFS, first wins)."""
        best: _Node | None = None

        def visit(node: _Node) -> None:
            nonlocal best
            if node.allocated:
                return
            if node.children is not None:
                for c in node.children:
                    visit(c)
                return
            if node.grid.size >= size and (best is None or node.grid.size < best.grid.size):
                best = node

        visit(self._root)
        return best

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SubgridAllocator(capacity={self.capacity}, "
            f"in_use={self.in_use()}, leases={len(self._leases)})"
        )
