"""Triangular matrix inversion (paper Section V).

Triangular inversion — unlike general matrix inversion — is numerically
stable (Du Croz & Higham) and, crucially for the paper, can be parallelized
with only ``O(log^2 p)`` synchronizations because the two half-sized
recursive inversions are *independent*.

* :mod:`repro.inversion.sequential` — blocked sequential inversion built on
  forward substitution (the redundant base-case kernel);
* :mod:`repro.inversion.rec_tri_inv` — the parallel recursive inversion
  ``RecTriInv`` with its cost analysis;
* :mod:`repro.inversion.cost_model` — the Section V-B closed forms.
"""

from repro.inversion.sequential import (
    invert_lower_triangular,
    invert_unit_lower_triangular,
)
from repro.inversion.rec_tri_inv import rec_tri_inv
from repro.inversion.cost_model import (
    NU,
    rec_tri_inv_cost,
    rec_tri_inv_recurrence,
    redistribution_level_cost,
)

__all__ = [
    "invert_lower_triangular",
    "invert_unit_lower_triangular",
    "rec_tri_inv",
    "rec_tri_inv_cost",
    "rec_tri_inv_recurrence",
    "redistribution_level_cost",
    "NU",
]
