"""Newton-Schulz iterative matrix inversion (contrast experiment).

The paper's approach uses *exact* recursive triangular inversion, which is
backward stable (Du Croz & Higham).  A natural question is whether an
iterative scheme — ``X_{j+1} = X_j (2I - L X_j)``, quadratically convergent
once ``||I - L X_0|| < 1`` — could serve instead: it is built entirely from
matrix multiplications, so it parallelizes exactly like the paper's MM.

The answer (exercised in ``tests/test_newton.py`` and the stability bench)
is the reason the paper inverts exactly: Newton-Schulz needs a spectrally
scaled starting guess whose convergence degrades with the condition number
of ``L``, costing ``O(log2(cond))`` extra MM sweeps on ill-conditioned
triangles, while the exact recursion is one fixed-depth pass.  We provide
the sequential kernel plus its iteration-count model.
"""

from __future__ import annotations

import math

import numpy as np

from repro.dist.triangular import (
    require_lower_triangular,
    require_nonsingular_triangular,
    require_square,
)


def newton_schulz_inverse(
    L: np.ndarray,
    tol: float = 1e-14,
    max_iters: int = 200,
    check: bool = True,
) -> tuple[np.ndarray, int]:
    """Invert a lower-triangular matrix by Newton-Schulz iteration.

    Starting guess ``X_0 = L.T / (||L||_1 ||L||_inf)`` (guarantees
    ``rho(I - L X_0) < 1`` for any nonsingular L).  Returns
    ``(inverse, iterations)``; raises ``RuntimeError`` if the residual has
    not fallen below ``tol`` within ``max_iters`` sweeps.
    """
    L = np.asarray(L, dtype=np.float64)
    n = require_square(L, "L")
    if check:
        require_lower_triangular(L, "L")
        require_nonsingular_triangular(L, "L")

    norm1 = float(np.abs(L).sum(axis=0).max())
    norminf = float(np.abs(L).sum(axis=1).max())
    X = L.T / (norm1 * norminf)
    eye = np.eye(n)
    for it in range(1, max_iters + 1):
        R = eye - L @ X
        # triangular structure: the iterate stays lower triangular in exact
        # arithmetic; re-project to kill roundoff fill-in above the diagonal
        X = np.tril(X @ (eye + R))
        if float(np.abs(R).max()) < tol:
            return X, it
    raise RuntimeError(
        f"Newton-Schulz did not converge within {max_iters} iterations "
        f"(condition number too large for the scaled starting guess)"
    )


def predicted_iterations(cond: float, tol: float = 1e-14) -> float:
    """Iteration-count model: ``log2(kappa^2) + log2(log(1/tol))``.

    The scaled start gives ``||I - L X_0|| ~ 1 - 1/kappa^2``; halving the
    exponent each sweep needs ``~2 log2(kappa)`` sweeps to reach contraction
    plus ``log2 log`` sweeps to polish — the quantity that makes
    Newton-Schulz uncompetitive with one exact recursive pass.
    """
    if cond < 1:
        raise ValueError("condition number must be >= 1")
    polish = math.log2(max(math.log(1.0 / tol), 1.0))
    return 2.0 * math.log2(max(cond, 1.0 + 1e-15)) + polish
