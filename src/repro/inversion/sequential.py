"""Sequential lower-triangular inversion (built from scratch).

The recursive blocked scheme of Borodin & Munro (the paper's reference
[23]) applied to a lower-triangular matrix:

    inv([[L11,   0 ],      [[ inv(L11),                 0        ],
         [L21,  L22]])  =   [-inv(L22) L21 inv(L11),  inv(L22)   ]]

Both recursive inversions are independent; the combination needs two
triangular-times-dense multiplications.  The base case is direct forward
substitution.  Cost: ``n^3/6`` multiply-adds (columnwise substitution would
cost the same; the blocked form is BLAS-3 rich, which is why the paper's
flop constants are stated for it).
"""

from __future__ import annotations

import numpy as np

from repro.dist.triangular import (
    require_lower_triangular,
    require_nonsingular_triangular,
    require_square,
)


def _invert_base(L: np.ndarray) -> np.ndarray:
    """Unblocked inversion by forward substitution on the identity."""
    n = L.shape[0]
    X = np.zeros_like(L)
    for j in range(n):
        # Solve L x = e_j; x has zeros above j.
        X[j, j] = 1.0 / L[j, j]
        for i in range(j + 1, n):
            X[i, j] = -(L[i, j:i] @ X[j:i, j]) / L[i, i]
    return X


def invert_lower_triangular(
    L: np.ndarray, base_size: int = 32, check: bool = True
) -> np.ndarray:
    """Invert a lower-triangular matrix by the recursive blocked scheme.

    ``base_size`` controls when recursion falls back to unblocked forward
    substitution.  With ``check=True`` the input's triangularity and
    nonsingularity are validated first.
    """
    L = np.asarray(L, dtype=np.float64)
    n = require_square(L, "L")
    if check:
        require_lower_triangular(L, "L")
        require_nonsingular_triangular(L, "L")
    return _invert_recursive(L, max(int(base_size), 1))


def _invert_recursive(L: np.ndarray, base_size: int) -> np.ndarray:
    n = L.shape[0]
    if n <= base_size:
        return _invert_base(L)
    h = n // 2
    inv11 = _invert_recursive(L[:h, :h], base_size)
    inv22 = _invert_recursive(L[h:, h:], base_size)
    X = np.zeros_like(L)
    X[:h, :h] = inv11
    X[h:, h:] = inv22
    X[h:, :h] = -inv22 @ (L[h:, :h] @ inv11)
    return X


def invert_unit_lower_triangular(L: np.ndarray, base_size: int = 32) -> np.ndarray:
    """Invert a unit lower-triangular matrix (diagonal assumed exactly 1)."""
    L = np.asarray(L, dtype=np.float64)
    require_square(L, "L")
    M = L.copy()
    np.fill_diagonal(M, 1.0)
    return _invert_recursive(M, max(int(base_size), 1))
