"""RecTriInv: parallel recursive triangular inversion (Section V).

The recursion

    inv(L) = [[ inv(L11),                0       ],
              [-inv(L22) L21 inv(L11), inv(L22)  ]]

runs the two half-sized inversions **concurrently on disjoint halves of the
processor grid** (this independence is what makes the synchronization cost
logarithmic rather than polynomial in ``p``), then combines them with two
3D matrix multiplications on the full grid.

Schedule per level, matching the paper's recurrence
``T(n, p) = T_redistr + 2*T_MM(n/2, n/2, p) + T(n/2, p/2)``:

1. route ``L11`` to grid half ``Pi1`` and ``L22`` to ``Pi2``.  Each move
   is a **fused transition** (extract + redistribute composed into one
   map, the paper's three-step cyclic/blocked/cyclic transition as one)
   charged at the exact per-pair routing cost;
2. recurse on both halves *concurrently* (the simulator's per-group clocks
   overlap them automatically);
3. route both inverses back to the full grid (exact routing again);
4. ``T = -MM(inv(L22), L21)`` and ``inv(L21) = MM(T, inv(L11))`` on the
   full grid, with a-priori optimal MM splits;
5. assemble the three pieces into the output through charged embeds —
   when ``h`` is not a multiple of the grid side the offset blocks
   genuinely change ranks, and the routing plan charges exactly those
   words (the old scratch-copy assembly moved them silently for free).

The base case (grid exhausted or ``n <= base_n``) allgathers the remaining
block and inverts it **redundantly** on every rank of the subgrid, exactly
as the paper's 1D base case does.

The paper's idealized split shrinks each grid dimension by ``2^{1/3}``;
integer grids cannot do that, so each child recurses on a **square quarter**
of the grid (the full-grid multiplications of every level need a square
grid).  The two children occupy disjoint quadrants and run concurrently, so
the critical-path recurrence is ``T(n, p) = T_redistr + 2*T_MM(n/2, n/2, p)
+ T(n/2, p/4)`` — same ``O(log^2 p)`` synchronization and convergent
geometric bandwidth series as the paper's halving recurrence (the per-level
bandwidth ratio becomes ``2^{-2/3}`` instead of ``2^{-4/9}``).
"""

from __future__ import annotations

from repro.dist.distmatrix import DistMatrix
from repro.dist.layout import CyclicLayout
from repro.dist.redistribute import (
    embed_submatrix,
    extract_submatrix,
    redistribute,
    route_submatrix,
)
from repro.dist.triangular import (
    require_lower_triangular,
    require_nonsingular_triangular,
    require_square,
)
from repro.inversion.sequential import invert_lower_triangular
from repro.machine.collectives import allgather_blocks
from repro.machine.cost import Cost
from repro.machine.machine import Machine
from repro.machine.topology import ProcessorGrid
from repro.machine.validate import GridError, require
from repro.mm.dispatch import choose_mm_split
from repro.mm.mm3d import mm3d
from repro.util.checking import flops_tri_inv_seq


def rec_tri_inv(
    L: DistMatrix,
    base_n: int = 8,
    _depth: int = 0,
) -> DistMatrix:
    """Invert a lower-triangular distributed matrix.

    ``L`` must be cyclically distributed on a 2D grid.  Returns ``inv(L)``
    distributed exactly like ``L``.  ``base_n`` is the matrix size below
    which the remaining subgrid inverts redundantly.
    """
    machine = L.machine
    n = require_square(L, "L")
    if _depth == 0:
        G = L.to_global()
        require_lower_triangular(G, "L")
        require_nonsingular_triangular(G, "L")

    grid = L.grid
    require(
        grid.ndim == 2 and grid.shape[0] == grid.shape[1],
        GridError,
        f"rec_tri_inv requires a square 2D grid, got {grid.shape}",
    )
    p = grid.size
    sp = grid.shape[0]
    if sp < 2 or n <= max(base_n, 1) or n < 2:
        return _invert_base_case(L)

    h = n // 2

    # -- split the grid: two disjoint square quadrants for the children -------
    top, bottom = grid.halves(0)
    grid1 = top.halves(1)[0]  # top-left quadrant
    grid2 = bottom.halves(1)[1]  # bottom-right quadrant

    # -- fused extract + redistribute: one exact charge per child chain -------
    lay1 = CyclicLayout(*grid1.shape)
    lay2 = CyclicLayout(*grid2.shape)
    L11h = route_submatrix(L, 0, h, 0, h, grid1, lay1, label="rectriinv.route_down")
    L22h = route_submatrix(L, h, n, h, n, grid2, lay2, label="rectriinv.route_down")
    L21 = extract_submatrix(L, h, n, 0, h, label="rectriinv.extract21")

    # -- concurrent recursive inversions (disjoint rank groups) ---------------
    inv11h = rec_tri_inv(L11h, base_n=base_n, _depth=_depth + 1)
    inv22h = rec_tri_inv(L22h, base_n=base_n, _depth=_depth + 1)

    # -- back to the full grid, then two full-grid multiplications ------------
    layf = CyclicLayout(*grid.shape)
    inv11 = redistribute(inv11h, grid, layf, label="rectriinv.route_back")
    inv22 = redistribute(inv22h, grid, layf, label="rectriinv.route_back")

    p1, _p2 = choose_mm_split(h, h, p, params=machine.params)
    T = mm3d(inv22, L21, p1, scale=-1.0)  # -inv(L22) @ L21
    inv21 = mm3d(T, inv11, p1)  # (-inv(L22) L21) @ inv(L11)

    # -- assemble through charged embeds: the (h, h)/(h, 0) offsets move ------
    # words between ranks whenever h % sp != 0, and the plan charges them
    out = DistMatrix.zeros(machine, grid, L.layout, (n, n))
    embed_submatrix(out, inv11, 0, 0, label="rectriinv.embed")
    embed_submatrix(out, inv22, h, h, label="rectriinv.embed")
    embed_submatrix(out, inv21, h, 0, label="rectriinv.embed")
    return out


def _invert_base_case(L: DistMatrix) -> DistMatrix:
    """Allgather the block and invert redundantly on every subgrid rank."""
    machine = L.machine
    grid = L.grid
    n = L.shape[0]
    group = grid.ranks()
    contribs = {r: L.blocks[r] for r in group}
    allgather_blocks(machine, group, contribs, label="rectriinv.base_gather")
    full = L.to_global()  # every rank now holds the assembled block
    inv = invert_lower_triangular(full, check=False)
    machine.charge(
        group,
        Cost(S=0.0, W=0.0, F=flops_tri_inv_seq(n)),
        label="rectriinv.base_invert",
        sync=False,
    )
    return DistMatrix.from_global(machine, grid, L.layout, inv)


def rec_tri_inv_global(
    machine: Machine,
    grid: ProcessorGrid,
    L_global: np.ndarray,
    base_n: int = 8,
) -> DistMatrix:
    """Convenience wrapper: distribute ``L_global`` cyclically, then invert."""
    layout = CyclicLayout(*grid.shape)
    L = DistMatrix.from_global(machine, grid, layout, L_global)
    return rec_tri_inv(L, base_n=base_n)
