"""RecTriInv: parallel recursive triangular inversion (Section V).

The recursion

    inv(L) = [[ inv(L11),                0       ],
              [-inv(L22) L21 inv(L11), inv(L22)  ]]

runs the two half-sized inversions **concurrently on disjoint halves of the
processor grid** (this independence is what makes the synchronization cost
logarithmic rather than polynomial in ``p``), then combines them with two
3D matrix multiplications on the full grid.

Schedule per level, matching the paper's recurrence
``T(n, p) = T_redistr + 2*T_MM(n/2, n/2, p) + T(n/2, p/2)``:

1. redistribute ``L11`` to grid half ``Pi1`` and ``L22`` to ``Pi2``
   (all-to-all bound — the paper's three-step cyclic/blocked/cyclic
   transition has the same cost);
2. recurse on both halves *concurrently* (the simulator's per-group clocks
   overlap them automatically);
3. redistribute both inverses back to the full grid;
4. ``T = -MM(inv(L22), L21)`` and ``inv(L21) = MM(T, inv(L11))`` on the
   full grid, with a-priori optimal MM splits.

The base case (grid exhausted or ``n <= base_n``) allgathers the remaining
block and inverts it **redundantly** on every rank of the subgrid, exactly
as the paper's 1D base case does.

The paper's idealized split shrinks each grid dimension by ``2^{1/3}``;
integer grids cannot do that, so each child recurses on a **square quarter**
of the grid (the full-grid multiplications of every level need a square
grid).  The two children occupy disjoint quadrants and run concurrently, so
the critical-path recurrence is ``T(n, p) = T_redistr + 2*T_MM(n/2, n/2, p)
+ T(n/2, p/4)`` — same ``O(log^2 p)`` synchronization and convergent
geometric bandwidth series as the paper's halving recurrence (the per-level
bandwidth ratio becomes ``2^{-2/3}`` instead of ``2^{-4/9}``).
"""

from __future__ import annotations

import numpy as np

from repro.dist.distmatrix import DistMatrix
from repro.dist.layout import CyclicLayout
from repro.dist.redistribute import extract_submatrix, redistribute
from repro.dist.triangular import (
    require_lower_triangular,
    require_nonsingular_triangular,
    require_square,
)
from repro.inversion.sequential import invert_lower_triangular
from repro.machine.collectives import allgather_blocks
from repro.machine.cost import Cost
from repro.machine.machine import Machine
from repro.machine.topology import ProcessorGrid
from repro.machine.validate import GridError, require
from repro.mm.dispatch import choose_mm_split
from repro.mm.mm3d import mm3d
from repro.util.checking import flops_tri_inv_seq


def rec_tri_inv(
    L: DistMatrix,
    base_n: int = 8,
    _depth: int = 0,
) -> DistMatrix:
    """Invert a lower-triangular distributed matrix.

    ``L`` must be cyclically distributed on a 2D grid.  Returns ``inv(L)``
    distributed exactly like ``L``.  ``base_n`` is the matrix size below
    which the remaining subgrid inverts redundantly.
    """
    machine = L.machine
    n = require_square(L, "L")
    if _depth == 0:
        G = L.to_global()
        require_lower_triangular(G, "L")
        require_nonsingular_triangular(G, "L")

    grid = L.grid
    require(
        grid.ndim == 2 and grid.shape[0] == grid.shape[1],
        GridError,
        f"rec_tri_inv requires a square 2D grid, got {grid.shape}",
    )
    p = grid.size
    sp = grid.shape[0]
    if sp < 2 or n <= max(base_n, 1) or n < 2:
        return _invert_base_case(L)

    h = n // 2

    # -- split the grid: two disjoint square quadrants for the children -------
    top, bottom = grid.halves(0)
    grid1 = top.halves(1)[0]  # top-left quadrant
    grid2 = bottom.halves(1)[1]  # bottom-right quadrant

    L11 = extract_submatrix(L, 0, h, 0, h, label="rectriinv.extract11")
    L22 = extract_submatrix(L, h, n, h, n, label="rectriinv.extract22")
    L21 = extract_submatrix(L, h, n, 0, h, label="rectriinv.extract21")

    lay1 = CyclicLayout(*grid1.shape)
    lay2 = CyclicLayout(*grid2.shape)
    L11h = redistribute(L11, grid1, lay1, label="rectriinv.redistr")
    L22h = redistribute(L22, grid2, lay2, label="rectriinv.redistr")

    # -- concurrent recursive inversions (disjoint rank groups) ---------------
    inv11h = rec_tri_inv(L11h, base_n=base_n, _depth=_depth + 1)
    inv22h = rec_tri_inv(L22h, base_n=base_n, _depth=_depth + 1)

    # -- back to the full grid, then two full-grid multiplications ------------
    layf = CyclicLayout(*grid.shape)
    inv11 = redistribute(inv11h, grid, layf, label="rectriinv.redistr_back")
    inv22 = redistribute(inv22h, grid, layf, label="rectriinv.redistr_back")

    p1, _p2 = choose_mm_split(h, h, p, params=machine.params)
    T = mm3d(inv22, L21, p1, scale=-1.0)  # -inv(L22) @ L21
    inv21 = mm3d(T, inv11, p1)  # (-inv(L22) L21) @ inv(L11)

    # -- assemble (local placement: every piece is already on the full grid) --
    out = np.zeros((n, n))
    out[:h, :h] = inv11.to_global()
    out[h:, h:] = inv22.to_global()
    out[h:, :h] = inv21.to_global()
    return DistMatrix.from_global(machine, grid, L.layout, out)


def _invert_base_case(L: DistMatrix) -> DistMatrix:
    """Allgather the block and invert redundantly on every subgrid rank."""
    machine = L.machine
    grid = L.grid
    n = L.shape[0]
    group = grid.ranks()
    contribs = {r: L.blocks[r] for r in group}
    allgather_blocks(machine, group, contribs, label="rectriinv.base_gather")
    full = L.to_global()  # every rank now holds the assembled block
    inv = invert_lower_triangular(full, check=False)
    machine.charge(
        group,
        Cost(S=0.0, W=0.0, F=flops_tri_inv_seq(n)),
        label="rectriinv.base_invert",
        sync=False,
    )
    return DistMatrix.from_global(machine, grid, L.layout, inv)


def rec_tri_inv_global(
    machine: Machine,
    grid: ProcessorGrid,
    L_global: np.ndarray,
    base_n: int = 8,
) -> DistMatrix:
    """Convenience wrapper: distribute ``L_global`` cyclically, then invert."""
    layout = CyclicLayout(*grid.shape)
    L = DistMatrix.from_global(machine, grid, layout, L_global)
    return rec_tri_inv(L, base_n=base_n)
