"""Closed-form costs of recursive triangular inversion (Section V-B).

The paper's total for ``RecTriInv`` on a ``p1 x p1 x p2`` grid
(``p = p1^2 p2``), with ``nu = 2^{1/3} / (2^{1/3} - 1)``:

    W = nu * (n^2/(8 p1^2) + n^2/(2 p1 p2))
    F = nu * n^3 / (8 p)
    S = O(log^2 p)

The geometric factor ``nu`` sums the level-wise matrix-multiplication
bandwidths, which shrink by ``2^{4/9}`` per recursion level in the paper's
idealized continuous grid split.  The implementable split halves the
processor count per level exactly as in the paper's recurrence;
the bench (E5) checks the measured costs against both the closed form and
the recurrence below.
"""

from __future__ import annotations

import math

from repro.machine.cost import Cost
from repro.mm.cost_model import mm3d_cost
from repro.util.mathutil import unit_step

#: The paper's geometric-series constant ``2^{1/3} / (2^{1/3} - 1)``.
NU: float = 2.0 ** (1.0 / 3.0) / (2.0 ** (1.0 / 3.0) - 1.0)


def rec_tri_inv_cost(n: int, p1: int, p2: int) -> Cost:
    """The paper's closed-form leading-order cost of RecTriInv.

    ``S`` is modeled as ``2 log^2 p`` (the constant is not pinned down by
    the paper beyond ``O(log^2 p)``; the bench asserts the growth rate, not
    the constant).
    """
    p = p1 * p1 * p2
    n_f = float(n)
    lg = math.log2(p) if p > 1 else 0.0
    return Cost(
        S=2.0 * lg * lg,
        W=NU * (n_f**2 / (8.0 * p1**2) + n_f**2 / (2.0 * p1 * p2)) * unit_step(p),
        F=NU * n_f**3 / (8.0 * p),
    )


def rec_tri_inv_base_cost(n0: int, p1: int, p2: int) -> Cost:
    """Base-case cost: ``alpha*2 log(p2/p1) + beta*2 n0^2 + gamma*n0^3``."""
    ratio = max(p2 / max(p1, 1), 1.0)
    return Cost(
        S=2.0 * math.log2(ratio) if ratio > 1 else 0.0,
        W=2.0 * float(n0) ** 2,
        F=float(n0) ** 3,
    )


def redistribution_level_cost(n: int, p: int) -> Cost:
    """Exact-routing cost of one RecTriInv level's four fused transitions.

    Each level routes ``L11``/``L22`` down to the quadrant grids and the
    two inverses back — four fused extract/redistribute chains, each a
    single charge under :mod:`repro.dist.routing`.  Going cyclic(sp) ->
    cyclic(sp/2) maps every source coordinate onto exactly one destination
    coordinate, so each destination rank receives from the 2 x 2
    coordinate fan — 3 off-rank partners (``S = 3``) — and turns over
    three quarters of its child block, ``3 (n/2)^2 / (p/4) / 4 = 3 n^2 /
    (4 p)`` words.  Four transitions per level:

        ``S = 12``, ``W = 3 n^2 / p``

    — a constant number of messages per level where the old all-to-all
    bound paid ``2 log p`` rounds, which is precisely what exact routing
    buys.
    """
    n_f = float(n)
    return Cost(S=12.0 * unit_step(p), W=3.0 * n_f * n_f / p * unit_step(p), F=0.0)


def rec_tri_inv_recurrence(
    n: int, p: int, base_n: int = 1, _level: int = 0
) -> Cost:
    """Cost recurrence mirroring the implemented quartering schedule.

    ``T(n, p) = T_redistr(n/2, p) + 2*T_MM(n/2, n/2, p) + T(n/2, p/4)``
    with a redundant subgrid base-case inversion once the grid side is 1 or
    ``n <= base_n``.  MM splits are chosen per level exactly as the
    implementation does (minimum modeled time over valid splits), and the
    redistribution term is the exact-routing
    :func:`redistribution_level_cost` (the all-to-all bound the paper uses
    is an envelope of it).

    This is the tight "model of the implementation" that the simulator is
    checked against; the paper's closed form above is its idealized
    envelope.
    """
    from repro.mm.dispatch import choose_mm_split

    n_f = float(n)
    if p <= 1 or n <= base_n:
        # allgather of the local triangle + redundant sequential inversion
        lg = math.log2(p) if p > 1 else 0.0
        return Cost(S=lg, W=n_f * n_f * unit_step(p), F=n_f**3 / 6.0)
    h = n // 2
    lg = math.log2(p)
    redistr = redistribution_level_cost(n, p)
    try:
        p1, p2 = choose_mm_split(h, h, p)
        mm = mm3d_cost(h, h, p1, p2)
    except Exception:
        mm = Cost(S=lg, W=n_f * n_f / 4.0, F=n_f**3 / (8.0 * p))
    sub = rec_tri_inv_recurrence(h, p // 4, base_n=base_n, _level=_level + 1)
    return redistr + mm + mm + sub


def optimal_inversion_grid(p: int, n0: int, n: int) -> tuple[float, float]:
    """The paper's ``r1, r2`` for inverting ``n/n0`` diagonal blocks.

    ``r1 = (p*n0/(4n))^{1/3}`` and ``r2 = (16*p*n0/n)^{1/3}`` — the split
    with ``r2 = 4*r1`` that minimizes the inversion bandwidth (Section
    VII-A).  Returned as real-valued targets; the simulator snaps them onto
    valid integer grids.
    """
    r1 = (p * n0 / (4.0 * n)) ** (1.0 / 3.0)
    r2 = (16.0 * p * n0 / n) ** (1.0 / 3.0)
    return r1, r2
