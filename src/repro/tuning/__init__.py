"""A-priori parameter tuning (paper Section VIII).

* :mod:`repro.tuning.regimes` — the 1D/2D/3D regime boundaries
  (``n < 4k/p`` / ``n > 4k sqrt(p)`` / in between);
* :mod:`repro.tuning.parameters` — the paper's closed-form optimal
  ``p1, p2, n0, r1, r2`` per regime, snapped onto realizable grids;
* :mod:`repro.tuning.optimizer` — exhaustive discrete search over valid
  parameter combinations minimizing the modeled execution time (used to
  validate the closed forms and for machines whose alpha/beta/gamma ratios
  sit far from the asymptotic assumptions).
"""

from repro.tuning.regimes import TrsmRegime, classify_trsm, regime_boundaries
from repro.tuning.parameters import TuningChoice, tuned_parameters
from repro.tuning.optimizer import optimize_parameters

__all__ = [
    "TrsmRegime",
    "classify_trsm",
    "regime_boundaries",
    "TuningChoice",
    "tuned_parameters",
    "optimize_parameters",
]
