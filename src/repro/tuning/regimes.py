"""TRSM regime classification (Section VIII / Figure 1).

The processor-grid layout depends on the relative sizes of ``L`` (n x n)
and ``B`` (n x k):

* ``n < 4k/p`` — **one large dimension**: 1D grid, invert everything
  (``n0 = n``), no update phase;
* ``n > 4k sqrt(p)`` — **two large dimensions**: 2D grid (``p2 = 1``);
* otherwise — **three large dimensions**: full 3D grid.

``regime_map`` (in :mod:`repro.analysis.regime_map`) sweeps this function
over the (n/k, p) plane to regenerate Figure 1.
"""

from __future__ import annotations

import enum
import math

from repro.machine.validate import ParameterError, require


class TrsmRegime(enum.Enum):
    """Which processor-grid layout Section VIII prescribes."""

    ONE_LARGE = "1D"
    TWO_LARGE = "2D"
    THREE_LARGE = "3D"


def classify_trsm(n: int, k: int, p: int) -> TrsmRegime:
    """The Section VIII case split for solving ``(n x n) X = (n x k)``."""
    require(n >= 1 and k >= 1 and p >= 1, ParameterError, "n, k, p must be >= 1")
    if n < 4.0 * k / p:
        return TrsmRegime.ONE_LARGE
    if n > 4.0 * k * math.sqrt(p):
        return TrsmRegime.TWO_LARGE
    return TrsmRegime.THREE_LARGE


def regime_boundaries(k: int, p: int) -> tuple[float, float]:
    """The two ``n`` thresholds ``(4k/p, 4k sqrt(p))`` for given ``k, p``."""
    require(k >= 1 and p >= 1, ParameterError, "k, p must be >= 1")
    return 4.0 * k / p, 4.0 * k * math.sqrt(p)
