"""Closed-form optimal parameters per regime (Section VIII tables).

========  =====================  ==========================  ================================
regime    grid ``(p1, p2)``      block size ``n0``           inversion subgrid ``r1, r2``
========  =====================  ==========================  ================================
1D        ``(1, p)``             ``n``                       ``r1 = r2 = p^{1/3}``
2D        ``(sqrt(p), 1)``       ``(n k^3 sqrt(p))^{1/4}``   ``(k/n)^{1/4} p^{3/8}``
3D        ``((pn/4k)^{1/3},      ``min(sqrt(nk), n)``        ``(min(p sqrt(nk)/n, p))^{1/3}``
          (4k sqrt(p)/n)^{2/3})``
========  =====================  ==========================  ================================

The closed forms are real-valued; :func:`tuned_parameters` snaps them onto
realizable values: ``p1`` a power of two with ``p1^2 | p`` and ``p2 = p/p1^2``,
and ``n0`` a divisor of ``n`` (geometric rounding).  ``r1, r2`` are reported
as the paper's targets — the simulator derives its own valid inversion
subgrids from them (see ``diagonal_inverter``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.machine.validate import ParameterError, require
from repro.tuning.regimes import TrsmRegime, classify_trsm
from repro.util.mathutil import is_power_of_two


@dataclass(frozen=True)
class TuningChoice:
    """A complete parameter set for It-Inv-TRSM."""

    regime: TrsmRegime
    p1: int
    p2: int
    n0: int
    r1: float
    r2: float

    @property
    def p(self) -> int:
        return self.p1 * self.p1 * self.p2


def _snap_p1(p: int, target: float) -> int:
    """Largest-fidelity power-of-two ``p1`` with ``p1^2 | p`` near ``target``."""
    candidates = []
    p1 = 1
    while p1 * p1 <= p:
        if p % (p1 * p1) == 0:
            candidates.append(p1)
        p1 *= 2
    require(bool(candidates), ParameterError, f"no valid p1 for p={p}")
    return min(candidates, key=lambda c: abs(math.log(c / max(target, 1e-12))))


def _snap_n0(n: int, target: float) -> int:
    """Divisor of ``n`` closest (geometrically) to ``target``."""
    divisors = [d for d in range(1, n + 1) if n % d == 0]
    return min(divisors, key=lambda d: abs(math.log(d / max(target, 1e-12))))


def resolve_grid_size(p: int | None, grid) -> int:
    """Resolve the processor count from an explicit ``p`` and/or a grid target.

    The tuning entry points historically assumed the whole machine; with the
    Cluster front-end a request is tuned *for its assigned subgrid*, so the
    caller passes ``grid=`` (any :class:`~repro.machine.topology.
    ProcessorGrid` view — its rank count is what matters) and may omit ``p``.
    Passing both requires them to agree.
    """
    if grid is not None:
        size = int(grid.size)
        require(
            p is None or int(p) == size,
            ParameterError,
            f"p={p} disagrees with the target grid's {size} ranks",
        )
        return size
    require(p is not None, ParameterError, "need p or a target grid")
    return int(p)


def tuned_parameters(n: int, k: int, p: int | None = None, *, grid=None) -> TuningChoice:
    """The Section VIII closed-form parameters, snapped to valid values.

    ``grid=`` scopes the choice to a specific processor grid (a Cluster
    subgrid lease) instead of a bare machine size.
    """
    p = resolve_grid_size(p, grid)
    require(n >= 1 and k >= 1 and p >= 1, ParameterError, "n, k, p must be >= 1")
    require(
        is_power_of_two(p),
        ParameterError,
        f"p must be a power of two for grid snapping, got {p}",
    )
    regime = classify_trsm(n, k, p)
    n_f, k_f, p_f = float(n), float(k), float(p)

    if regime is TrsmRegime.ONE_LARGE:
        p1, n0 = 1, n
        r = p_f ** (1.0 / 3.0)
        r1 = r2 = r
    elif regime is TrsmRegime.TWO_LARGE:
        p1 = _snap_p1(p, math.sqrt(p_f))
        n0 = _snap_n0(n, (n_f * k_f**3 * math.sqrt(p_f)) ** 0.25)
        r1 = r2 = (k_f / n_f) ** 0.25 * p_f ** 0.375
    else:
        p1 = _snap_p1(p, (p_f * n_f / (4.0 * k_f)) ** (1.0 / 3.0))
        n0 = _snap_n0(n, min(math.sqrt(n_f * k_f), n_f))
        r1 = r2 = min(p_f * math.sqrt(n_f * k_f) / n_f, p_f) ** (1.0 / 3.0)

    p2 = p // (p1 * p1)
    return TuningChoice(
        regime=regime,
        p1=p1,
        p2=p2,
        n0=n0,
        r1=max(r1, 1.0),
        r2=max(r2, 1.0),
    )
