"""Exhaustive discrete parameter search for It-Inv-TRSM.

The paper gives *asymptotically* optimal parameters and notes "there is a
trade off between the constant factors on the bandwidth and latency costs.
The exact choice is therefore machine dependent and should be determined
experimentally."  This module is that experiment done a priori: enumerate
every realizable ``(p1, p2, n0)`` and pick the one minimizing the modeled
execution time under the machine's actual ``alpha, beta, gamma``.

Used by the solver when ``algorithm="auto"`` with ``tune="search"`` and by
the E7 bench to validate that the closed forms land within a small factor
of the discrete optimum.
"""

from __future__ import annotations

from repro.machine.cost import CostParams
from repro.machine.validate import ParameterError, require
from repro.tuning.parameters import TuningChoice
from repro.tuning.regimes import classify_trsm
from repro.util.mathutil import is_power_of_two


def _valid_p1s(p: int) -> list[int]:
    out = []
    p1 = 1
    while p1 * p1 <= p:
        if p % (p1 * p1) == 0:
            out.append(p1)
        p1 *= 2
    return out


def _candidate_n0s(n: int, max_candidates: int = 64) -> list[int]:
    """Divisors of ``n`` (all of them if few, geometrically thinned if many)."""
    divisors = [d for d in range(1, n + 1) if n % d == 0]
    if len(divisors) <= max_candidates:
        return divisors
    step = len(divisors) / max_candidates
    return sorted({divisors[int(i * step)] for i in range(max_candidates)} | {n})


def optimize_parameters(
    n: int,
    k: int,
    p: int | None = None,
    params: CostParams | None = None,
    *,
    grid=None,
) -> TuningChoice:
    """Best ``(p1, p2, n0)`` under the modeled total time.

    ``r1, r2`` are set to the paper's optimum for the winning ``n0``.
    ``grid=`` scopes the search to a specific processor grid (a Cluster
    subgrid lease) instead of a bare machine size.
    """
    from repro.inversion.cost_model import optimal_inversion_grid
    from repro.trsm.cost_model import iterative_cost
    from repro.tuning.parameters import resolve_grid_size

    p = resolve_grid_size(p, grid)
    require(n >= 1 and k >= 1 and p >= 1, ParameterError, "n, k, p must be >= 1")
    require(is_power_of_two(p), ParameterError, f"p must be a power of two, got {p}")
    params = params or CostParams()

    best: tuple[float, TuningChoice] | None = None
    regime = classify_trsm(n, k, p)
    for p1 in _valid_p1s(p):
        p2 = p // (p1 * p1)
        for n0 in _candidate_n0s(n):
            t = iterative_cost(n, k, n0, p1, p2).time(params)
            if best is None or t < best[0]:
                r1, r2 = optimal_inversion_grid(p, n0, n)
                best = (
                    t,
                    TuningChoice(
                        regime=regime,
                        p1=p1,
                        p2=p2,
                        n0=n0,
                        r1=max(r1, 1.0),
                        r2=max(r2, 1.0),
                    ),
                )
    assert best is not None
    return best[1]
