#!/usr/bin/env python
"""Building a custom distributed algorithm on the simulated machine.

This example shows the substrate the paper's algorithms are written on,
by implementing a small new algorithm from scratch: a distributed
**conjugate-gradient-style iteration** preconditioned with the prepared
triangular solver — i.e. Raghavan's selective-inversion preconditioning
(the paper's Section II-C3 citation) made concrete.

We solve an SPD system ``A x = b`` with Richardson iteration preconditioned
by ``M^{-1} = inv(L)^T inv(L)`` where ``A ~ L L^T`` is an incomplete
(block-diagonal) Cholesky sketch.  Each iteration applies the prepared
TRSM twice — the repeated-solve workload where the one-off Diagonal-
Inverter amortizes to nothing.

Usage:  python examples/custom_algorithm.py [n] [p] [iters]
"""

import sys

import numpy as np

from repro import HARDWARE_PRESETS, PreparedTrsm, random_spd


def block_diagonal_cholesky(A: np.ndarray, nb: int) -> np.ndarray:
    """Incomplete factor: Cholesky of the nb x nb diagonal blocks only."""
    n = A.shape[0]
    L = np.zeros_like(A)
    step = max(n // nb, 1)
    for lo in range(0, n, step):
        hi = min(lo + step, n)
        L[lo:hi, lo:hi] = np.linalg.cholesky(A[lo:hi, lo:hi])
    return L


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 128
    p = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    iters = int(sys.argv[3]) if len(sys.argv) > 3 else 30

    params = HARDWARE_PRESETS["latency_bound"]
    A = random_spd(n, seed=0)
    b = np.random.default_rng(1).standard_normal(n)

    L = block_diagonal_cholesky(A, nb=8)
    Prev = np.eye(n)[::-1]
    Lrev = Prev @ L.T @ Prev  # lower-triangular image of L^T

    fwd = PreparedTrsm(L, p=p, k_hint=1, params=params)
    bwd = PreparedTrsm(Lrev, p=p, k_hint=1, params=params)
    prep_time = fwd.preparation_time + bwd.preparation_time

    x = np.zeros(n)
    solve_time = 0.0
    history = []
    for it in range(iters):
        r = b - A @ x
        rel = np.linalg.norm(r) / np.linalg.norm(b)
        history.append(rel)
        if rel < 1e-12:
            break
        # z = M^{-1} r  via two prepared triangular applications
        y = fwd.solve(r, verify=False)
        z = Prev @ bwd.solve(Prev @ y, verify=False)
        solve_time += fwd.last_solve_time + bwd.last_solve_time
        x = x + z

    print(f"preconditioned Richardson on SPD system: n={n}, p={p}")
    print(f"  iterations          : {len(history)}")
    print(f"  final rel. residual : {history[-1]:.2e}")
    print(f"  preparation (once)  : {prep_time * 1e3:9.3f} ms (simulated)")
    print(f"  all applications    : {solve_time * 1e3:9.3f} ms (simulated)")
    print(
        f"  per application     : {solve_time / max(2 * (len(history) - 1), 1) * 1e3:9.3f} ms"
    )
    print()
    print("convergence:", " ".join(f"{r:.1e}" for r in history[:8]), "...")


if __name__ == "__main__":
    main()
