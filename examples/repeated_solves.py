#!/usr/bin/env python
"""Repeated triangular solves: where selective inversion really pays.

The paper cites Raghavan's selective-inversion preconditioning (Section
II-C3): in iterative methods the *same* triangular factor is applied every
iteration, so the one-off cost of inverting diagonal blocks amortizes and
each subsequent application is pure (highly parallel) matrix
multiplication.

This example simulates ``m`` successive solves against one factor:

* the **recursive baseline** pays its full latency every time;
* the **iterative algorithm** pays the Diagonal-Inverter once, then only
  the solve+update phases per application.

We model the amortized regime by separating the inversion phase cost from
the per-application cost and printing the break-even application count.

Usage:  python examples/repeated_solves.py [n] [k] [p] [m]
"""

import sys

from repro import HARDWARE_PRESETS, random_dense, random_lower_triangular, trsm


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 128
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 32
    p = int(sys.argv[3]) if len(sys.argv) > 3 else 16
    m = int(sys.argv[4]) if len(sys.argv) > 4 else 20

    params = HARDWARE_PRESETS["latency_bound"]
    L = random_lower_triangular(n, seed=0)
    B = random_dense(n, k, seed=1)

    r_it = trsm(L, B, p=p, algorithm="iterative", params=params)
    r_rec = trsm(L, B, p=p, algorithm="recursive", params=params)

    phases = r_it.phase_costs()
    t_inv = phases["inversion"].time(params)
    t_apply = r_it.time - t_inv  # setup + solve + update per application
    t_rec = r_rec.time

    print(f"Problem: n={n}, k={k}, p={p} (latency-bound machine)\n")
    print(f"iterative: one-off inversion   {t_inv * 1e3:9.3f} ms")
    print(f"iterative: per application     {t_apply * 1e3:9.3f} ms")
    print(f"recursive: per application     {t_rec * 1e3:9.3f} ms\n")

    if t_apply < t_rec:
        be = t_inv / (t_rec - t_apply)
        print(f"break-even after {be:.1f} applications\n")
    else:
        print("recursive per-application cost is lower at this size\n")

    print(f"{'applications':>12s} | {'iterative ms':>12s} | {'recursive ms':>12s} | speedup")
    print("-" * 58)
    for apps in (1, 2, 5, 10, m):
        t_total_it = t_inv + apps * t_apply
        t_total_rec = apps * t_rec
        print(
            f"{apps:12d} | {t_total_it * 1e3:12.3f} | {t_total_rec * 1e3:12.3f} "
            f"| {t_total_rec / t_total_it:7.2f}x"
        )


if __name__ == "__main__":
    main()
