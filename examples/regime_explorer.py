#!/usr/bin/env python
"""Regime explorer: the paper's Figure 1 plus a-priori parameter advice.

Prints the (n/k, p) regime map (which processor-grid layout Section VIII
prescribes where), then, for a concrete (n, k, p), the closed-form tuned
parameters next to the exhaustive model-search optimum and the predicted
improvement over the recursive baseline.

Usage:  python examples/regime_explorer.py [n] [k] [p]
"""

import sys

from repro import optimize_parameters, tuned_parameters
from repro.analysis import (
    improvement_factors,
    regime_map,
    render_regime_map,
)
from repro.trsm.cost_model import iterative_cost
from repro.machine.cost import CostParams


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 4096
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 256
    p = int(sys.argv[3]) if len(sys.argv) > 3 else 1024

    print("Figure 1 — grid layout by relative matrix size and machine size")
    print(render_regime_map(regime_map((-6, 6), (4, 65536))))
    print()

    print(f"A-priori tuning for n={n}, k={k}, p={p}")
    print("-" * 60)
    params = CostParams()
    closed = tuned_parameters(n, k, p)
    best = optimize_parameters(n, k, p, params=params)
    for name, c in (("closed form (Sec. VIII)", closed), ("model search", best)):
        t = iterative_cost(n, k, c.n0, c.p1, c.p2).time(params)
        print(
            f"{name:24s}: regime={c.regime.value}  p1={c.p1:<4d} p2={c.p2:<6d} "
            f"n0={c.n0:<6d} modeled t={t * 1e3:.3f} ms"
        )

    imp = improvement_factors(n, k, p)
    print()
    print(f"standard / new method cost ratios ({imp.regime.value} regime):")
    print(f"  latency   S_std/S_new = {imp.latency_ratio:10.2f}"
          f"   (paper predicts ~{imp.predicted_latency_ratio:.2f})")
    print(f"  bandwidth W_std/W_new = {imp.bandwidth_ratio:10.2f}")
    print(f"  flops     F_std/F_new = {imp.flop_ratio:10.2f}")


if __name__ == "__main__":
    main()
