#!/usr/bin/env python
"""General linear systems: LU factorization + forward/backward TRSM pair.

The second factorization workload from the paper's introduction: after
``P A = L U``, a solve is one unit-lower TRSM and one upper TRSM.  This
example uses the library's BLAS-style variant layer (`solve_lu`,
`solve_triangular`) and reports the simulated communication cost of each
triangular stage — the part of the solve that actually talks to the
network once the factors exist.

Usage:  python examples/lu_solver.py [n] [k] [p]
"""

import sys

import numpy as np

from repro.trsm.variants import solve_lu
from repro.util.randmat import random_dense


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 192
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 48
    p = int(sys.argv[3]) if len(sys.argv) > 3 else 16

    rng = np.random.default_rng(0)
    A = rng.standard_normal((n, n)) + n * np.eye(n)  # well conditioned
    B = random_dense(n, k, seed=1)

    print(f"LU solve: A ({n}x{n}), {k} right-hand sides, p={p} processors\n")
    X, fwd, bwd = solve_lu(A, B, p=p)

    err = np.linalg.norm(A @ X - B) / (np.linalg.norm(A) * np.linalg.norm(X))
    print(f"relative error: {err:.2e}\n")

    for name, res in (("L solve (unit lower)", fwd), ("U solve (upper)", bwd)):
        c = res.measured
        assert res.choice is not None
        print(
            f"{name:22s}: regime={res.choice.regime.value}  n0={res.choice.n0:<5d}"
            f"S={c.S:8.0f}  W={c.W:12.0f}  F={c.F:12.0f}  t={res.time * 1e3:8.3f} ms"
        )
    print(f"\ntotal simulated TRSM time: {(fwd.time + bwd.time) * 1e3:.3f} ms")


if __name__ == "__main__":
    main()
