#!/usr/bin/env python
"""Quickstart: solve a triangular system on a simulated 64-processor machine.

Runs the paper's It-Inv-TRSM with a-priori tuned parameters, verifies the
solution against SciPy, and prints the measured critical-path costs next to
the closed-form model.

Usage:  python examples/quickstart.py [n] [k] [p]
"""

import sys

import numpy as np
import scipy.linalg as sla

from repro import random_dense, random_lower_triangular, trsm


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 64
    p = int(sys.argv[3]) if len(sys.argv) > 3 else 64

    print(f"Solving L X = B with n={n}, k={k} on p={p} simulated processors\n")
    L = random_lower_triangular(n, seed=0)
    B = random_dense(n, k, seed=1)

    result = trsm(L, B, p=p)

    assert result.choice is not None
    c = result.choice
    print(f"regime            : {c.regime.value}")
    print(f"grid (p1, p1, p2) : ({c.p1}, {c.p1}, {c.p2})")
    print(f"inverted blocks   : n0 = {c.n0}  ({n // c.n0} blocks)")
    print(f"inversion subgrid : r1 = {c.r1:.2f}, r2 = {c.r2:.2f} (paper targets)")
    print()
    print(f"residual          : {result.residual:.2e}")
    ref = sla.solve_triangular(L, B, lower=True)
    print(f"max |X - scipy|   : {np.abs(result.X - ref).max():.2e}")
    print()
    m, mod = result.measured, result.modeled
    print("critical path     :  measured            modeled (Section VII)")
    print(f"  S (messages)    :  {m.S:12.0f}        {mod.S:12.0f}")
    print(f"  W (words)       :  {m.W:12.0f}        {mod.W:12.0f}")
    print(f"  F (flops)       :  {m.F:12.0f}        {mod.F:12.0f}")
    print(f"  simulated time  :  {result.time * 1e3:.3f} ms")
    print()
    print("per-phase costs (S / W / F):")
    for name, cost in sorted(result.phase_costs().items()):
        print(f"  {name:10s}: {cost.S:8.0f} / {cost.W:10.0f} / {cost.F:12.0f}")


if __name__ == "__main__":
    main()
