"""Serve a mixed request queue through the Cluster scheduler.

Usage: python examples/cluster_serve.py [p] [requests]

Hosts every operand on the cluster's data plane, submits a mix of TRSM,
MM and prepared-solve requests, and prints the per-request placements
plus the makespan comparison against serial full-grid execution.
"""

import sys

import numpy as np

from repro import (
    Cluster,
    MMRequest,
    PreparedSolveRequest,
    PreparedTrsm,
    TrsmRequest,
)
from repro.analysis.serve import serve_report
from repro.api.serve import replay_mixed
from repro.util.randmat import random_dense, random_lower_triangular


def main() -> int:
    p = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    count = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    rng = np.random.default_rng(0)
    cluster = Cluster(p)

    # A factor prepared once, applied many times (Section II-C3).
    Lfix = random_lower_triangular(64, seed=99)
    prepared = PreparedTrsm(Lfix, p=p, k_hint=16)

    for i in range(count):
        n = int(rng.choice([64, 128]))
        k = int(rng.choice([8, 16, 32]))
        style = i % 3
        if style == 0:
            L = cluster.host(random_lower_triangular(n, seed=i))
            B = cluster.host(random_dense(n, k, seed=100 + i))
            cluster.submit(TrsmRequest(L=L, B=B))
        elif style == 1:
            A = cluster.host(random_dense(n, n, seed=200 + i))
            X = cluster.host(random_dense(n, k, seed=300 + i))
            cluster.submit(MMRequest(A=A, X=X))
        else:
            B = cluster.host(random_dense(64, 16, seed=400 + i))
            cluster.submit(PreparedSolveRequest(prepared=prepared, B=B))

    outcome = cluster.run()
    print(serve_report(outcome))
    speedup = outcome.speedup_vs_serial()
    print(f"\npacked {count} requests at {speedup:.2f}x the serial rate")

    # The packing rule is pluggable: the mixed small/large pinned stream
    # is where conservative backfilling strictly beats greedy LPT.
    lpt = replay_mixed(p=16, policy="lpt", smalls=8)
    backfill = replay_mixed(p=16, policy="backfill", smalls=8)
    win = (1.0 - backfill.modeled_makespan / lpt.modeled_makespan) * 100.0
    print(
        f"mixed pinned stream: lpt {lpt.modeled_makespan * 1e6:.1f} us, "
        f"backfill {backfill.modeled_makespan * 1e6:.1f} us "
        f"({win:+.1f}% makespan win)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
