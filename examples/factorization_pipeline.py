#!/usr/bin/env python
"""End-to-end distributed pipeline: factor once, solve many.

Combines the two halves of the library the way a real application would:

1. factor ``A = L L^T`` on the simulated grid with the blocked distributed
   Cholesky (inversion-based panel solves — the paper's idea applied
   inside the factorization);
2. solve a stream of right-hand-side batches with the communication-
   avoiding TRSM (forward + backward sweep per batch);
3. report where the messages and words went, per phase, across the whole
   pipeline.

Usage:  python examples/factorization_pipeline.py [n] [k] [p] [batches]
"""

import sys

import numpy as np

from repro import HARDWARE_PRESETS, random_dense, random_spd, trsm
from repro.factor import cholesky_factor
from repro.machine import Machine


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 128
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 32
    p = int(sys.argv[3]) if len(sys.argv) > 3 else 16
    batches = int(sys.argv[4]) if len(sys.argv) > 4 else 3

    params = HARDWARE_PRESETS["default"]
    sp = int(p**0.5)
    A = random_spd(n, seed=0)

    # --- factor ---------------------------------------------------------
    machine = Machine(sp * sp, params=params)
    grid = machine.grid(sp, sp)
    Ld = cholesky_factor(machine, grid, A, block=max(n // 8, 1), panel="inversion")
    Lc = Ld.to_global()
    t_factor = machine.time()
    print(f"factorization: n={n}, p={sp * sp}, time {t_factor * 1e3:.3f} ms")
    for name in machine.phase_names():
        c = machine.phase_cost(name)
        print(f"  {name:16s}: S={c.S:8.0f}  W={c.W:12.0f}  F={c.F:12.0f}")

    # --- solve stream -----------------------------------------------------
    P = np.eye(n)[::-1]
    Lrev = P @ Lc.T @ P
    t_solves = 0.0
    worst_err = 0.0
    for b in range(batches):
        B = random_dense(n, k, seed=10 + b)
        fwd = trsm(Lc, B, p=p, params=params)
        bwd = trsm(Lrev, P @ fwd.X, p=p, params=params)
        X = P @ bwd.X
        t_solves += fwd.time + bwd.time
        err = np.linalg.norm(A @ X - B) / (np.linalg.norm(A) * np.linalg.norm(X))
        worst_err = max(worst_err, err)

    print(f"\n{batches} solve batches of {k} RHS each: {t_solves * 1e3:.3f} ms total")
    print(f"worst relative error: {worst_err:.2e}")
    print(
        f"\npipeline total: {(t_factor + t_solves) * 1e3:.3f} ms "
        f"(factorization share {t_factor / (t_factor + t_solves):.0%})"
    )


if __name__ == "__main__":
    main()
