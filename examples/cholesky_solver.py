#!/usr/bin/env python
"""Solving SPD linear systems: Cholesky factorization + two parallel TRSMs.

This is the workload the paper's introduction motivates: once ``A = L L^T``
is factored, every solve reduces to a forward TRSM with ``L`` and a backward
TRSM with ``L^T``.  With many right-hand sides (here: multiple load cases of
a finite-element-style stiffness system), the communication-avoiding solver
shines because the diagonal-block inversions amortize over all columns.

The backward solve reuses the lower-triangular machinery through the
reversal trick ``P L^T P`` (P the anti-identity), which is again lower
triangular.

Usage:  python examples/cholesky_solver.py [n] [k] [p]
"""

import sys

import numpy as np

from repro import random_dense, random_spd, trsm


def solve_spd(A: np.ndarray, B: np.ndarray, p: int):
    """Solve ``A X = B`` for SPD ``A`` with two simulated parallel TRSMs."""
    n = A.shape[0]
    Lc = np.linalg.cholesky(A)

    fwd = trsm(Lc, B, p=p)  # Lc Y = B

    P = np.eye(n)[::-1]
    Lrev = P @ Lc.T @ P  # lower-triangular image of Lc^T
    bwd = trsm(Lrev, P @ fwd.X, p=p)  # (P Lc^T P) (P X) = P Y
    X = P @ bwd.X
    return X, fwd, bwd


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 192
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 48
    p = int(sys.argv[3]) if len(sys.argv) > 3 else 16

    print(f"SPD solve: A ({n}x{n}), {k} right-hand sides, p={p} processors\n")
    A = random_spd(n, seed=0)
    B = random_dense(n, k, seed=1)

    X, fwd, bwd = solve_spd(A, B, p)

    err = np.linalg.norm(A @ X - B) / (np.linalg.norm(A) * np.linalg.norm(X))
    print(f"relative error ||A X - B|| / (||A|| ||X||): {err:.2e}\n")

    for name, res in (("forward solve", fwd), ("backward solve", bwd)):
        c = res.measured
        print(
            f"{name:15s}: regime={res.choice.regime.value}  "
            f"S={c.S:8.0f}  W={c.W:12.0f}  F={c.F:12.0f}  "
            f"t={res.time * 1e3:8.3f} ms"
        )

    total = fwd.time + bwd.time
    print(f"\ntotal simulated solve time: {total * 1e3:.3f} ms")
    print(
        "note: the factorization itself is local here; the paper's subject "
        "is the TRSM pair, which dominates communication for repeated solves."
    )


if __name__ == "__main__":
    main()
