#!/usr/bin/env python
"""Algorithm x machine comparison: when does selective inversion pay off?

Runs both TRSM algorithms on the simulator across the hardware presets
(latency-bound vs bandwidth-bound interconnects) and a strong-scaling sweep,
printing simulated execution times.  The expected shape, per the paper:

* on latency-bound machines the iterative (inversion) algorithm wins big —
  its synchronization cost is polylogarithmic in p;
* on bandwidth-bound machines the two methods converge (same W and F to
  leading order, modulo the 2x flop term of the inversion);
* strong scaling flattens much earlier for the recursive baseline.

Usage:  python examples/machine_comparison.py [n] [k]
"""

import sys

from repro import HARDWARE_PRESETS, random_dense, random_lower_triangular, trsm
from repro.analysis import format_table


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 128
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 32

    L = random_lower_triangular(n, seed=0)
    B = random_dense(n, k, seed=1)

    print(f"Problem: n={n}, k={k}\n")

    rows = []
    for preset in ("latency_bound", "default", "bandwidth_bound"):
        params = HARDWARE_PRESETS[preset]
        for p in (4, 16, 64):
            r_it = trsm(L, B, p=p, algorithm="iterative", params=params)
            r_rec = trsm(L, B, p=p, algorithm="recursive", params=params)
            rows.append(
                [
                    preset,
                    p,
                    r_it.time * 1e3,
                    r_rec.time * 1e3,
                    r_rec.time / r_it.time,
                    f"{r_it.residual:.1e}",
                ]
            )
    print(
        format_table(
            ["machine", "p", "iterative ms", "recursive ms", "speedup", "resid"],
            rows,
            title="It-Inv-TRSM vs Rec-TRSM across machines (simulated)",
        )
    )

    print()
    rows = []
    times = {}
    params = HARDWARE_PRESETS["latency_bound"]
    for p in (1, 4, 16, 64):
        r = trsm(L, B, p=p, algorithm="iterative", params=params)
        rows.append([p, r.time * 1e3, r.measured.S, r.measured.W, r.measured.F])
        times[f"p={p}"] = r.time * 1e3
    print(
        format_table(
            ["p", "time ms", "S", "W", "F"],
            rows,
            title="Strong scaling of It-Inv-TRSM (latency-bound machine)",
        )
    )
    print()
    from repro.analysis.report import render_bars

    print(render_bars(times, unit=" ms", title="simulated time by machine size"))


if __name__ == "__main__":
    main()
