PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-fast bench-smoke bench-policies bench-throughput \
	bench-daemon bench-backend lint replint lint-all selfcheck solve \
	serve clean

## Run the tier-1 test suite (what CI gates on).
test:
	$(PYTHON) -m pytest -x -q

## Fail-fast subset: the dist-layer contracts plus the scheduler and
## packing-policy contracts (allocator invariants, LPT parity goldens,
## backfill no-delay, optimal ground truth).
test-fast:
	$(PYTHON) -m pytest -x -q tests/test_layout.py tests/test_distmatrix.py \
		tests/test_redistribute.py tests/test_triangular_helpers.py \
		tests/test_row_block.py tests/test_layout_equivalences.py \
		tests/test_sched.py tests/test_policies.py

## Tiny routing + serve sweeps: fails fast on routing-cost or scheduler
## regressions (serve asserts packed makespan < serial full grid).
bench-smoke:
	BENCH_SMOKE=1 $(PYTHON) -m pytest -x -q benchmarks/bench_redistribute.py \
		benchmarks/bench_serve.py benchmarks/bench_throughput.py \
		benchmarks/bench_daemon.py

## Full-fat serve + policy-comparison sweep: gates backfill <= LPT (with
## the mixed-stream strict win), horizon <= min(lpt, backfill) on every
## recorded stream (counterexample included), horizon <= 1.1x the
## exhaustive optimum on small queues, and the opcache reuse floor;
## writes benchmarks/results/BENCH_serve.json (the CI bench job uploads it).
bench-policies:
	$(PYTHON) -m pytest -x -q benchmarks/bench_serve.py

## Serve-scale throughput gates: 10^4-request scheduling above the RPS
## floor, the vectorized/cached path bit-identical to the pinned
## reference and >= 50x quicker, and the ~100x-grown executed replay;
## writes benchmarks/results/BENCH_throughput.json (CI uploads it).
bench-throughput:
	$(PYTHON) -m pytest -x -q benchmarks/bench_throughput.py

## Online-daemon load test: the full serving pipeline (arrivals ->
## admission -> priority queue -> batch flushes) gated on a sustained
## wall-clock req/s floor; writes benchmarks/results/BENCH_daemon.json
## (CI uploads it).
bench-daemon:
	$(PYTHON) -m pytest -x -q benchmarks/bench_daemon.py

## Backend parity + modeled-vs-measured calibration: one replay through
## SimBackend and the loopback MPIBackend, bit-identical solutions
## asserted, the per-phase error recorded (not gated) to
## benchmarks/results/BENCH_backend.json (CI uploads it).
bench-backend:
	$(PYTHON) -m pytest -x -q benchmarks/bench_backend.py

## Ruff lint + formatting check (CI runs both; requires ruff on PATH).
lint:
	ruff check src tests benchmarks
	ruff format --check src tests benchmarks

## The repo-aware invariants pass (src/repro/lint): proves the cost
## model's invariants at lint time (see README "Static analysis").
replint:
	$(PYTHON) -m repro lint src tests benchmarks

## Everything the CI lint + static-analysis jobs run.  Ruff and mypy are
## skipped with a note when not installed (they are CI deps, not runtime
## deps); replint always runs — it has no dependencies beyond the repo.
lint-all: replint
	@if $(PYTHON) -c "import ruff" 2>/dev/null || command -v ruff >/dev/null; then \
		ruff check src tests benchmarks && \
		ruff format --check src tests benchmarks; \
	else echo "lint-all: ruff not installed, skipping (pip install ruff)"; fi
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy --strict -p repro.dist -p repro.sched; \
	else echo "lint-all: mypy not installed, skipping (pip install mypy)"; fi

## Acceptance battery on the simulated machine.
selfcheck:
	$(PYTHON) -m repro selfcheck

## A tuned simulated solve with cost report.
solve:
	$(PYTHON) -m repro solve

## Replay a Poisson request stream through the Cluster scheduler.
serve:
	$(PYTHON) -m repro serve

clean:
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis
